package check

import (
	"fmt"
	"math/rand"
	"time"

	"kset/internal/adversary"
	"kset/internal/sim"
)

// This file is the schedule fuzzer: a budgeted campaign of randomized
// runs driven through the zero-alloc round engine by sim.StreamSweep,
// with the oracle observer attached to every cell. Each cell's schedule
// is a pure function of (Seed, cell) via sim.CellSeed, so a campaign is
// deterministic for every worker count and any failure can be
// regenerated from its cell index alone.

// Strategy selects the fuzzer's schedule generator.
type Strategy string

const (
	// StrategyMixed draws one of the other strategies per cell.
	StrategyMixed Strategy = "mixed"
	// StrategyArbitrary generates entirely unconstrained per-round
	// digraphs (adversary.RandomRun): the chaos regime outside every
	// named predicate family.
	StrategyArbitrary Strategy = "arbitrary"
	// StrategyRooted generates rooted-skeleton runs with 1..n root
	// components plus additive noise (adversary.RandomSources), i.e.
	// schedules constrained to Psrcs(k) for k = #roots..n.
	StrategyRooted Strategy = "rooted"
	// StrategySingleSource generates Psrcs(1) runs with a universal
	// 2-source (adversary.RandomSingleSource): the consensus regime.
	StrategySingleSource Strategy = "singlesource"
	// StrategyMutate draws a base run from the adversary zoo (partition,
	// crashes, lower bound, eventual) and applies random edge flips
	// (adversary.Mutate).
	StrategyMutate Strategy = "mutate"
)

// Strategies lists every concrete (non-mixed) strategy.
var Strategies = []Strategy{StrategyArbitrary, StrategyRooted, StrategySingleSource, StrategyMutate}

// FuzzConfig describes one fuzzing campaign.
type FuzzConfig struct {
	// N is the number of processes; 0 means 4.
	N int
	// Budget is the number of runs; required, >= 1.
	Budget int
	// Seed is the campaign's base seed (cells derive their own).
	Seed int64
	// Workers bounds sweep parallelism; <= 1 is one core.
	Workers int
	// Strategy selects the schedule generator; "" means mixed.
	Strategy Strategy
	// Check configures the per-run oracle evaluation.
	Check Config
	// KeepFailures caps the retained failing runs; 0 means 1.
	KeepFailures int
}

// FuzzReport summarizes a fuzzing campaign.
type FuzzReport struct {
	// Runs is the number of executed runs (== Budget on a clean sweep).
	Runs int
	// FailedRuns is the number of runs with >= 1 oracle violation.
	FailedRuns int
	// Failures holds up to KeepFailures failing runs.
	Failures []*Failure
	// Elapsed is the campaign wall time.
	Elapsed time.Duration
}

// RunsPerSec returns the campaign throughput.
func (r *FuzzReport) RunsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Runs) / r.Elapsed.Seconds()
}

// GenRun builds the fuzzed schedule of one campaign cell: a pure
// function of (n, strategy, seed, cell), exported so that a failure
// reported by cell index can be regenerated independently of the sweep.
func GenRun(n int, strategy Strategy, seed int64, cell int) *adversary.Run {
	rng := rand.New(rand.NewSource(sim.CellSeed(seed, cell)))
	st := strategy
	if st == StrategyMixed || st == "" {
		st = Strategies[rng.Intn(len(Strategies))]
	}
	switch st {
	case StrategyArbitrary:
		return adversary.RandomRun(n, rng.Intn(2*n+1), rng)
	case StrategyRooted:
		roots := 1 + rng.Intn(n)
		return adversary.RandomSources(n, roots, rng.Intn(n+1), 0.3, rng)
	case StrategySingleSource:
		return adversary.RandomSingleSource(n, rng.Intn(n+1), 0.2, 0.3, rng)
	case StrategyMutate:
		var base *adversary.Run
		switch pick := rng.Intn(4); {
		case pick == 0:
			base = adversary.Partition(n, adversary.EvenPartition(n, 1+rng.Intn(n)))
		case pick == 1:
			base, _ = adversary.RandomCrashes(n, rng.Intn(n), 3, rng)
		case pick == 2 && n >= 3:
			base = adversary.LowerBound(n, 2+rng.Intn(n-2)) // 2 <= k < n
		default:
			base = adversary.Eventual(adversary.Complete(n), rng.Intn(n))
		}
		return adversary.Mutate(base, 1+rng.Intn(2*n), rng)
	default:
		panic(fmt.Sprintf("check: unknown strategy %q", st))
	}
}

// Fuzz runs one campaign. The first execution error aborts it; oracle
// violations do not (they are collected into the report).
func Fuzz(cfg FuzzConfig) (*FuzzReport, error) {
	n := cfg.N
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return nil, fmt.Errorf("check: Fuzz needs n >= 1, got %d", n)
	}
	if cfg.Budget < 1 {
		return nil, fmt.Errorf("check: Fuzz needs budget >= 1, got %d", cfg.Budget)
	}
	keep := cfg.KeepFailures
	if keep <= 0 {
		keep = 1
	}

	report := &FuzzReport{}
	start := time.Now()
	err := sim.StreamSweep(sim.StreamConfig{
		Cells:   cfg.Budget,
		Workers: cfg.Workers,
		Spec: func(cell int) (sim.Spec, error) {
			run := GenRun(n, cfg.Strategy, cfg.Seed, cell)
			spec, _ := NewCheckedSpec(run, cfg.Check)
			return spec, nil
		},
		OnOutcome: func(cell int, out *sim.Outcome) error {
			report.Runs++
			obs := out.Observer.(*Observer)
			if fail := obs.Finish(out); fail != nil {
				report.FailedRuns++
				if len(report.Failures) < keep {
					report.Failures = append(report.Failures, fail)
				}
			}
			return nil
		},
	})
	report.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	return report, nil
}
