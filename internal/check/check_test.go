package check

import (
	"os"
	"strings"
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/runfile"
)

func conservative() Config {
	return Config{
		Opts:    core.Options{ConservativeDecide: true},
		Oracles: SoundOracles(),
	}
}

// TestCheckRunCleanOnZoo pins that the sound oracle set holds on the
// paper's own constructions under the repaired guard.
func TestCheckRunCleanOnZoo(t *testing.T) {
	runs := map[string]*adversary.Run{
		"figure1":    adversary.Figure1(),
		"complete6":  adversary.Complete(6),
		"isolation4": adversary.Isolation(4),
		"lowerbound": adversary.LowerBound(6, 3),
		"partition":  adversary.Partition(6, adversary.EvenPartition(6, 2)),
		"eventual":   adversary.Eventual(adversary.Complete(5), 3),
	}
	for name, run := range runs {
		fail, err := CheckRun(run, conservative())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fail != nil {
			t.Errorf("%s: unexpected violations:\n%s", name, fail)
		}
	}
}

// TestCheckRunFindsE10Flaw pins that the oracle set detects the
// published guard's unsoundness on its deterministic witness: the
// paper-faithful options MUST violate k-bound on ConsensusViolation
// with its crafted proposal vector.
func TestCheckRunFindsE10Flaw(t *testing.T) {
	cfg := Config{
		Opts:      core.Options{},
		Oracles:   SoundOracles(),
		Proposals: adversary.ConsensusViolationProposals(),
	}
	fail, err := CheckRun(adversary.ConsensusViolation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("paper-faithful guard passed all oracles on the E10 witness")
	}
	found := false
	for _, v := range fail.Violations {
		if v.Oracle == "k-bound" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a k-bound violation, got:\n%s", fail)
	}
}

// TestInvertedOracleShrinksToTrivialRun pins the acceptance-criterion
// fire drill: the deliberately broken inverted-k oracle fires on any
// correct run; shrinking must reduce the counterexample to a trivial
// schedule that still replays through a runfile round-trip.
func TestInvertedOracleShrinksToTrivialRun(t *testing.T) {
	cfg := Config{
		Opts:    core.Options{ConservativeDecide: true},
		Oracles: OracleSet{InvertKBound: true},
	}
	run := GenRun(4, StrategyArbitrary, 7, 0)
	fail, err := CheckRun(run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("inverted-k oracle did not fire")
	}
	res, err := Shrink(fail, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Oracle != "inverted-k-bound" {
		t.Fatalf("shrunk oracle = %q", res.Oracle)
	}
	min := res.Failure
	if min.Run.N() != 1 || min.Run.PrefixLen() != 0 {
		t.Errorf("shrink left n=%d prefix=%d, want the trivial 1-process static run",
			min.Run.N(), min.Run.PrefixLen())
	}
	if min.Outcome.Rounds > 3 {
		t.Errorf("shrunk counterexample needs %d rounds, want <= 3", min.Outcome.Rounds)
	}

	// Replay through the runfile codec.
	buf := runfile.Encode(min.Run)
	replayed, err := runfile.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	again, err := CheckRun(replayed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatal("replayed counterexample no longer violates")
	}
	if again.Violations[0].Oracle != "inverted-k-bound" {
		t.Fatalf("replayed violation = %v", again.Violations[0])
	}
}

// TestShrinkPreservesOracleClass plants a k-bound failure via the
// published guard's flaw and checks the shrinker keeps that class while
// strictly simplifying the schedule.
func TestShrinkPreservesOracleClass(t *testing.T) {
	cfg := Config{
		Opts:      core.Options{},
		Oracles:   SoundOracles(),
		Proposals: adversary.ConsensusViolationProposals(),
	}
	fail, err := CheckRun(adversary.ConsensusViolation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("witness did not fire with crafted proposals") // pinned above too
	}
	// Shrinking re-checks with canonical 1..n proposals; the class must
	// still reproduce for the shrinker to make progress. If it does not,
	// Shrink returns the input unchanged — also acceptable, but pin
	// whichever holds so regressions surface.
	res, err := Shrink(fail, cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("shrink lost the counterexample")
	}
	found := false
	for _, v := range res.Failure.Violations {
		if v.Oracle == res.Oracle {
			found = true
		}
	}
	if res.Oracle != "" && !found {
		t.Fatalf("shrunk failure lost its oracle class %q:\n%s", res.Oracle, res.Failure)
	}
}

// TestWriteCounterexampleArtifacts checks the exporter emits the three
// artifact files and that the runfile replays.
func TestWriteCounterexampleArtifacts(t *testing.T) {
	cfg := Config{
		Opts:    core.Options{ConservativeDecide: true},
		Oracles: OracleSet{InvertKBound: true},
	}
	fail, err := CheckRun(adversary.Complete(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("inverted oracle did not fire")
	}
	dir := t.TempDir()
	paths, err := WriteCounterexample(dir, "ce", fail)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d artifacts, want 3", len(paths))
	}
	run, err := runfile.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if run.N() != 3 {
		t.Fatalf("replayed runfile has n=%d", run.N())
	}
	for _, p := range paths[1:] {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "p1") {
			t.Errorf("%s looks empty:\n%s", p, b)
		}
	}
}
