package check

import (
	"testing"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
)

// TestExploreN2Exhaustive checks every n=2 configuration of depth 3
// against the sound oracles under the repaired guard: the paper's claims
// must hold on all of them.
func TestExploreN2Exhaustive(t *testing.T) {
	rep, err := Explore(ExploreConfig{N: 2, Depth: 3, Check: conservative()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sequences != 64 || rep.Configurations != 128 {
		t.Fatalf("sequences = %d configurations = %d, want 64 and 128", rep.Sequences, rep.Configurations)
	}
	if rep.FailedRuns != 0 {
		t.Fatalf("%d failing runs, first:\n%s", rep.FailedRuns, rep.Failures[0])
	}
	if rep.Executions != rep.Sequences {
		t.Fatalf("executions = %d, orbit-stabilizer says they must equal the %d sequences",
			rep.Executions, rep.Sequences)
	}
}

// TestExploreN3Exhaustive is the acceptance-criterion exploration: all
// n=3 depth-2 configurations (4096 schedules × 6 proposal orders,
// symmetry-reduced to 4096 executions) pass every sound oracle under the
// repaired guard.
func TestExploreN3Exhaustive(t *testing.T) {
	rep, err := Explore(ExploreConfig{N: 3, Depth: 2, Check: conservative()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sequences != 4096 || rep.Configurations != 4096*6 {
		t.Fatalf("sequences = %d configurations = %d", rep.Sequences, rep.Configurations)
	}
	if rep.FailedRuns != 0 {
		t.Fatalf("%d failing runs, first:\n%s", rep.FailedRuns, rep.Failures[0])
	}
	// Orbit–stabilizer: one execution per configuration class, summing
	// to exactly the schedule count.
	if rep.Executions != rep.Sequences {
		t.Fatalf("executions = %d, want %d", rep.Executions, rep.Sequences)
	}
	if red := rep.Reduction(); red != 6 {
		t.Errorf("symmetry reduction %.2fx, want exactly 6x (|S3|)", red)
	}
	t.Logf("n=3 depth=2: %d configurations, %d canonical schedules, %d executions (%.0fx reduction)",
		rep.Configurations, rep.Canonical, rep.Executions, rep.Reduction())
}

// TestExploreFaithfulGuardFindsFlaw is the falsification engine doing
// its job: under the PUBLISHED (unsound) line-28 guard, the exhaustive
// n=3 depth-2 exploration must find k-bound violations — a smaller
// witness of the same flaw that E10 demonstrates with a hand-crafted
// 4-process run. The first failure must shrink without growing and keep
// its oracle class.
func TestExploreFaithfulGuardFindsFlaw(t *testing.T) {
	cfg := Config{Opts: core.Options{}, Oracles: SoundOracles()}
	rep, err := Explore(ExploreConfig{N: 3, Depth: 2, Check: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedRuns == 0 {
		t.Fatal("published guard survived the exhaustive n=3 depth=2 exploration; " +
			"the E10 flaw has a 3-process witness and must be found")
	}
	t.Logf("published guard: %d of %d executions violate; first:\n%s",
		rep.FailedRuns, rep.Executions, rep.Failures[0])

	fail := rep.Failures[0]
	res, err := Shrink(fail, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Oracle != "k-bound" {
		t.Fatalf("shrunk oracle class %q, want k-bound", res.Oracle)
	}
	min := res.Failure
	if min.Run.N() > fail.Run.N() || min.Run.PrefixLen() > fail.Run.PrefixLen() {
		t.Fatal("shrinking made the counterexample bigger")
	}
}

// TestExploreMatchesBruteForce cross-validates the symmetry reduction:
// a plain brute force over all n=3 depth-2 schedules with FIXED
// canonical proposals is a subset of the explorer's configuration space,
// so wherever brute force finds failures the explorer must too, and
// under the repaired guard both must find none.
func TestExploreMatchesBruteForce(t *testing.T) {
	brute := func(cfg Config) int {
		e := &explorer{n: 3, m: 6, graphs: make([]*graph.Digraph, 64)}
		failed := 0
		for m1 := uint32(0); m1 < 64; m1++ {
			for m2 := uint32(0); m2 < 64; m2++ {
				run := adversary.NewRun([]*graph.Digraph{e.graphFor(m1)}, e.graphFor(m2))
				fail, err := CheckRun(run, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if fail != nil {
					failed++
				}
			}
		}
		return failed
	}

	faithful := Config{Opts: core.Options{}, Oracles: SoundOracles()}
	bruteFaithful := brute(faithful)
	if bruteFaithful == 0 {
		t.Fatal("fixed-proposal brute force found no faithful-guard failures; expected the E10 flaw at n=3")
	}
	repFaithful, err := Explore(ExploreConfig{N: 3, Depth: 2, Check: faithful})
	if err != nil {
		t.Fatal(err)
	}
	if repFaithful.FailedRuns == 0 {
		t.Fatalf("brute force finds %d failures but the explorer finds none: reduction is unsound", bruteFaithful)
	}

	if bruteCons := brute(conservative()); bruteCons != 0 {
		t.Fatalf("brute force found %d conservative-guard failures", bruteCons)
	}
	t.Logf("faithful guard: brute force %d/4096 failed (fixed proposals), explorer %d/%d (all proposal orders)",
		bruteFaithful, repFaithful.FailedRuns, repFaithful.Executions)
}

// TestExploreCanonicalOrbitCounting cross-checks the lex-leader count on
// n=3 depth=1 against a direct count of lex-least masks.
func TestExploreCanonicalOrbitCounting(t *testing.T) {
	perms := schedulePerms(3)
	want := 0
	for mask := uint32(0); mask < 64; mask++ {
		least := true
		for _, sp := range perms {
			if permuteMask(mask, sp.bits) < mask {
				least = false
				break
			}
		}
		if least {
			want++
		}
	}
	rep, err := Explore(ExploreConfig{N: 3, Depth: 1, Check: conservative()})
	if err != nil {
		t.Fatal(err)
	}
	if int(rep.Canonical) != want {
		t.Fatalf("explorer executed %d canonical masks, direct count says %d", rep.Canonical, want)
	}
	if rep.Executions != rep.Sequences {
		t.Fatalf("executions = %d, want %d", rep.Executions, rep.Sequences)
	}
}

// TestExploreRejectsBadConfigs pins the search-space and argument
// guards.
func TestExploreRejectsBadConfigs(t *testing.T) {
	if _, err := Explore(ExploreConfig{N: 4, Depth: 3, Check: conservative()}); err == nil {
		t.Fatal("no error for a 2^36 search space")
	}
	if _, err := Explore(ExploreConfig{N: 5, Depth: 1, Check: conservative()}); err == nil {
		t.Fatal("no error for n=5")
	}
	bad := conservative()
	bad.Proposals = []int64{1, 2, 3}
	if _, err := Explore(ExploreConfig{N: 3, Depth: 1, Check: bad}); err == nil {
		t.Fatal("no error for a fixed proposal override")
	}
}
