package stats

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the property battery comparing the streaming accumulators
// against the batch helpers on random inputs, pinning the edge cases the
// falsification PR hardened: fewer-than-five and exactly-five samples
// (exact percentile expected), all-equal streams, and the P² estimate
// staying inside the observed range.

func randomStream(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	switch rng.Intn(4) {
	case 0: // uniform
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
	case 1: // heavy-tailed
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64() * 3)
		}
	case 2: // small integers, many duplicates
		for i := range xs {
			xs[i] = float64(rng.Intn(5))
		}
	default: // all equal
		v := rng.Float64() * 10
		for i := range xs {
			xs[i] = v
		}
	}
	return xs
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestStreamMatchesSummarizeExactFields pins that mean, stddev, min, max
// and N from the streaming Summary agree with the batch Summarize on
// random streams of every size, and that the percentiles agree EXACTLY
// while the stream holds at most five observations.
func TestStreamMatchesSummarizeExactFields(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		xs := randomStream(rng, n)
		s := NewStream()
		for i, x := range xs {
			s.Add(x)
			got := s.Summary()
			want := Summarize(xs[:i+1])
			if got.N != want.N || !approxEq(got.Mean, want.Mean) || !approxEq(got.StdDev, want.StdDev) ||
				got.Min != want.Min || got.Max != want.Max {
				t.Fatalf("trial %d n=%d: stream %+v vs batch %+v", trial, i+1, got, want)
			}
			if i+1 <= 5 {
				if !approxEq(got.P50, want.P50) || !approxEq(got.P95, want.P95) {
					t.Fatalf("trial %d n=%d: small-sample percentiles not exact: stream p50=%v p95=%v batch p50=%v p95=%v",
						trial, i+1, got.P50, got.P95, want.P50, want.P95)
				}
			} else {
				// P² estimates must stay inside the observed range.
				// (They are INDEPENDENT estimators per quantile, so
				// p50 <= p95 is NOT guaranteed: on duplicate-heavy
				// streams the two can cross by a small margin — found
				// by this battery and documented on Stream.)
				if got.P50 < want.Min-1e-9 || got.P50 > want.Max+1e-9 ||
					got.P95 < want.Min-1e-9 || got.P95 > want.Max+1e-9 {
					t.Fatalf("trial %d n=%d: P² estimate outside [min,max]: %+v (batch %+v)",
						trial, i+1, got, want)
				}
			}
		}
	}
}

// TestP2ExactlyFiveSamples pins the edge the fix addressed: at exactly
// five observations the estimator must return the batch percentile, not
// the middle marker.
func TestP2ExactlyFiveSamples(t *testing.T) {
	e := NewP2Quantile(0.95)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		e.Add(x)
	}
	want := Percentile([]float64{1, 2, 3, 4, 5}, 95) // 4.8
	if got := e.Value(); !approxEq(got, want) {
		t.Fatalf("p95 of five samples = %v, want %v", got, want)
	}
}

// TestP2AllEqualStream pins that a constant stream estimates the
// constant at every length — the marker updates must not drift off the
// plateau.
func TestP2AllEqualStream(t *testing.T) {
	for _, p := range []float64{0.05, 0.5, 0.95} {
		e := NewP2Quantile(p)
		for i := 0; i < 200; i++ {
			e.Add(7.25)
			if got := e.Value(); got != 7.25 {
				t.Fatalf("p=%v n=%d: estimate %v on an all-equal stream", p, i+1, got)
			}
		}
	}
}

// TestP2ConvergesOnUniform sanity-checks the P² accuracy on a large
// shuffled uniform stream: within a few percent of the batch value.
func TestP2ConvergesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = float64(i)
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, p := range []float64{0.5, 0.95} {
		e := NewP2Quantile(p)
		for _, x := range xs {
			e.Add(x)
		}
		want := Percentile(xs, p*100)
		if rel := math.Abs(e.Value()-want) / want; rel > 0.05 {
			t.Fatalf("p=%v: P² %v vs batch %v (rel err %.3f)", p, e.Value(), want, rel)
		}
	}
}
