package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinel wrong")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("StdDev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 100), 5) {
		t.Fatal("extremes wrong")
	}
	if !almost(Percentile(xs, 50), 3) {
		t.Fatal("median wrong")
	}
	if !almost(Percentile(xs, 25), 2) {
		t.Fatal("q1 wrong")
	}
	// Interpolation between ranks.
	if !almost(Percentile([]float64{1, 2}, 50), 1.5) {
		t.Fatal("interpolation wrong")
	}
	if !almost(Percentile([]float64{9}, 75), 9) {
		t.Fatal("singleton wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Fatal("Median wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.P50, 3) || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty Summarize should be zero")
	}
	if Summarize([]float64{1}).String() == "" {
		t.Fatal("String empty")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3x + 1 exactly.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{4, 7, 10, 13}
	slope, intercept := LinearFit(xs, ys)
	if !almost(slope, 3) || !almost(intercept, 1) {
		t.Fatalf("fit = (%v, %v)", slope, intercept)
	}
}

func TestLinearFitNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 5 + rng.NormFloat64()*0.01
	}
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 0.01 || math.Abs(intercept-5) > 0.1 {
		t.Fatalf("noisy fit = (%v, %v)", slope, intercept)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LinearFit([]float64{1}, []float64{1}) },
		func() { LinearFit([]float64{1, 2}, []float64{1}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 7 x^2.5
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 * math.Pow(x, 2.5)
	}
	if e := PowerLawExponent(xs, ys); math.Abs(e-2.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 2.5", e)
	}
}

func TestPowerLawExponentPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PowerLawExponent([]float64{0, 1}, []float64{1, 2})
}
