// Package stats provides the small set of descriptive statistics and
// growth-fitting helpers the experiment harness needs. All functions are
// deterministic and allocation-light; they operate on float64 slices and
// never mutate their inputs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation; 0 for fewer than two
// elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks; it panics on an empty slice or an
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	// Equal closest ranks (including ties in the data) take the value
	// directly: interpolating a*(1-f) + a*f can differ from a in the
	// last bit, which matters to consumers comparing streamed and batch
	// summaries for byte-identical tables.
	if lo == hi || sorted[lo] == sorted[hi] {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
	P50, P95 float64
}

// Summarize computes a Summary; zero value for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
	}
}

// String renders the summary in the compact one-line form used by
// experiment notes.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f p50=%.1f p95=%.1f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// LinearFit returns slope and intercept of the least-squares line through
// (x, y) points. It panics unless len(xs) == len(ys) >= 2 and the xs are
// not all equal.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs >= 2 equal-length samples")
	}
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		panic("stats: LinearFit with constant x")
	}
	slope = num / den
	return slope, my - slope*mx
}

// PowerLawExponent fits y = c·x^e by regressing log y on log x and
// returns e: the growth exponent of a measured quantity (e.g. message
// bytes as a function of n, checking Section V's "polynomial in n"
// bit-complexity claim in experiment E5). All inputs must be positive.
func PowerLawExponent(xs, ys []float64) float64 {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: PowerLawExponent needs positive samples")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}
