package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs []float64
	var r Running
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 50
		xs = append(xs, x)
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("mean %v vs %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.StdDev()-StdDev(xs)) > 1e-9 {
		t.Fatalf("stddev %v vs %v", r.StdDev(), StdDev(xs))
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Fatalf("min/max %v/%v vs %v/%v", r.Min(), r.Max(), Min(xs), Max(xs))
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.StdDev() != 0 {
		t.Fatal("empty Running should report zeros")
	}
	if !math.IsInf(r.Min(), 1) || !math.IsInf(r.Max(), -1) {
		t.Fatal("empty Running min/max should match batch Min/Max of empty slice")
	}
}

func TestP2QuantileExactWhenSmall(t *testing.T) {
	e := NewP2Quantile(0.5)
	for _, x := range []float64{3, 1, 2} {
		e.Add(x)
	}
	if got := e.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v", got)
	}
}

func TestP2QuantileApproximatesBatch(t *testing.T) {
	for _, p := range []float64{0.5, 0.95} {
		rng := rand.New(rand.NewSource(11))
		e := NewP2Quantile(p)
		var xs []float64
		for i := 0; i < 5000; i++ {
			x := rng.ExpFloat64() * 100
			xs = append(xs, x)
			e.Add(x)
		}
		want := Percentile(xs, p*100)
		got := e.Value()
		// P² is an estimate; on 5000 exponential samples it should land
		// within a few percent of the exact batch percentile.
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("p=%v: estimate %v vs exact %v", p, got, want)
		}
	}
}

func TestP2QuantileDeterministic(t *testing.T) {
	a, b := NewP2Quantile(0.95), NewP2Quantile(0.95)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 1000
		a.Add(x)
		b.Add(x)
	}
	if a.Value() != b.Value() {
		t.Fatalf("same sequence, different estimates: %v vs %v", a.Value(), b.Value())
	}
}

func TestP2QuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v accepted", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Value on empty estimator accepted")
			}
		}()
		NewP2Quantile(0.5).Value()
	}()
}

func TestStreamMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := NewStream()
	var xs []float64
	for i := 0; i < 2000; i++ {
		x := float64(rng.Intn(200))
		xs = append(xs, x)
		s.Add(x)
	}
	got, want := s.Summary(), Summarize(xs)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("N/min/max: %+v vs %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-9 || math.Abs(got.StdDev-want.StdDev) > 1e-9 {
		t.Fatalf("mean/stddev: %+v vs %+v", got, want)
	}
	if math.Abs(got.P50-want.P50) > 0.05*(want.P50+1) ||
		math.Abs(got.P95-want.P95) > 0.05*(want.P95+1) {
		t.Fatalf("percentiles: %+v vs %+v", got, want)
	}
}

func TestStreamEmpty(t *testing.T) {
	if got := (NewStream()).Summary(); got != (Summary{}) {
		t.Fatalf("empty Stream summary = %+v", got)
	}
}
