package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the incremental (streaming) counterparts of the batch
// helpers in stats.go. They exist for the sharded sweep engine
// (sim.StreamSweep): a sweep of thousands of trials feeds each outcome
// into these accumulators and discards it, so no per-trial slice is ever
// retained (DESIGN.md §5). All accumulators are deterministic functions
// of their observation sequence — feeding the same values in the same
// order always yields the same state, which is what makes streamed
// experiment tables byte-identical across sweep worker counts.

// Running accumulates count, mean, min, max and the population standard
// deviation of a stream one observation at a time, in O(1) memory, using
// Welford's recurrence for the variance. The zero value is ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add feeds one observation.
func (a *Running) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Running) N() int { return a.n }

// Mean returns the running arithmetic mean; 0 before any observation.
func (a *Running) Mean() float64 { return a.mean }

// Min returns the smallest observation; +Inf before any observation
// (matching the batch Min of an empty slice).
func (a *Running) Min() float64 {
	if a.n == 0 {
		return math.Inf(1)
	}
	return a.min
}

// Max returns the largest observation; -Inf before any observation
// (matching the batch Max of an empty slice).
func (a *Running) Max() float64 {
	if a.n == 0 {
		return math.Inf(-1)
	}
	return a.max
}

// StdDev returns the population standard deviation of the observations so
// far; 0 for fewer than two.
func (a *Running) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// P2Quantile estimates a single quantile of a stream in O(1) memory with
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// min, the target quantile, the two intermediate quantiles and the max,
// and are nudged by a piecewise-parabolic update on every observation.
// For up to five observations the estimate is exact (computed from the
// buffered values with the same interpolation as the batch Percentile).
// Like Running, the state is a deterministic function of the observation
// sequence.
type P2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments
}

// NewP2Quantile returns an estimator for the quantile p in (0, 1), e.g.
// 0.95 for the 95th percentile.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %v out of (0,1)", p))
	}
	e := &P2Quantile{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
		}
		return
	}
	e.n++

	// Locate the cell containing x, widening the extremes if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker-height prediction.
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback marker-height prediction used when the parabolic
// one would violate marker monotonicity.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate. It is exact for up to
// five observations (computed from the buffered values with the same
// interpolation as the batch Percentile) and panics before the first
// one. At exactly five the buffer doubles as the freshly initialized
// marker state — the previous implementation already returned the
// middle marker q[2] there, which is the 50th percentile regardless of
// the target quantile (for p = 0.95 and samples 1..5 that reads 3 where
// the batch estimate is 4.8).
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		panic("stats: P2Quantile.Value before any observation")
	}
	if e.n <= 5 {
		// Percentile copies (and never mutates) its input, so the
		// buffer can be passed directly.
		return Percentile(e.q[:e.n], e.p*100)
	}
	return e.q[2]
}

// Stream accumulates the same descriptive statistics as Summarize —
// count, mean, population standard deviation, min, max, p50, p95 — in
// O(1) memory. Mean/min/max/stddev are exact; the percentiles are P²
// estimates once the stream exceeds five observations. The two
// percentile markers are independent estimators, so on duplicate-heavy
// streams P50 can exceed P95 by a small margin (a property of P², found
// by the stream_prop_test battery); consumers needing monotone
// quantiles must sort the pair. The zero value is NOT ready to use;
// call NewStream.
type Stream struct {
	Running
	p50, p95 *P2Quantile
}

// NewStream returns an empty streaming summary accumulator.
func NewStream() *Stream {
	return &Stream{p50: NewP2Quantile(0.50), p95: NewP2Quantile(0.95)}
}

// Add feeds one observation.
func (s *Stream) Add(x float64) {
	s.Running.Add(x)
	s.p50.Add(x)
	s.p95.Add(x)
}

// Summary renders the accumulated state as a Summary; the zero Summary
// before any observation (matching Summarize of an empty slice).
func (s *Stream) Summary() Summary {
	if s.N() == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.p50.Value(),
		P95:    s.p95.Value(),
	}
}
