package wire

import (
	"bytes"
	"testing"

	"kset/internal/core"
	"kset/internal/graph"
)

// fuzzSeeds returns representative encoded messages for the fuzz corpus:
// both kinds, negative and large estimates, empty and dense graphs.
func fuzzSeeds() [][]byte {
	g1 := graph.NewLabeled(6)
	g1.AddNode(5)
	g2 := graph.NewLabeled(6)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			g2.MergeEdge(u, v, 1+(u+v)%7)
		}
	}
	g3 := graph.NewLabeled(1)
	g3.MergeEdge(0, 0, 3)
	return [][]byte{
		Encode(core.Message{Kind: core.Prop, X: 1, G: g1}),
		Encode(core.Message{Kind: core.Decide, X: -1 << 40, G: g2}),
		Encode(core.Message{Kind: core.Prop, X: 0, G: g3}),
		{0x00}, // truncated after the kind byte
	}
}

// FuzzDecode feeds arbitrary bytes through Decode; every accepted input
// must re-encode canonically and round-trip to a semantically equal
// message, and no input may panic or over-allocate (the decoder bounds
// the universe and edge counts against the remaining input).
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if m2.Kind != m.Kind || m2.X != m.X || !m2.G.Equal(m.G) {
			t.Fatalf("round-trip changed the message: %v vs %v", m, m2)
		}
		// Canonical form: encoding is deterministic, so a second
		// encoding of the decoded message must be byte-identical.
		if !bytes.Equal(re, Encode(m2)) {
			t.Fatal("encoding is not canonical")
		}
	})
}
