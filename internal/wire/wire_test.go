package wire

import (
	"math/rand"
	"testing"

	"kset/internal/core"
	"kset/internal/graph"
)

func randomMessage(rng *rand.Rand) core.Message {
	n := 1 + rng.Intn(12)
	g := graph.NewLabeled(n)
	for i := 0; i < rng.Intn(3*n); i++ {
		g.MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(50))
	}
	for i := 0; i < rng.Intn(n); i++ {
		g.AddNode(rng.Intn(n)) // isolated nodes must survive round-trips
	}
	kind := core.Prop
	if rng.Intn(2) == 0 {
		kind = core.Decide
	}
	return core.Message{Kind: kind, X: rng.Int63n(1<<40) - (1 << 39), G: g}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		m := randomMessage(rng)
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode: %v (msg %v)", err, m)
		}
		if got.Kind != m.Kind || got.X != m.X || !got.G.Equal(m.G) {
			t.Fatalf("round-trip mismatch:\n in  %v x=%d\n out %v x=%d",
				m.G, m.X, got.G, got.X)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	g1 := graph.NewLabeled(4)
	g1.MergeEdge(0, 1, 3)
	g1.MergeEdge(2, 3, 1)
	g2 := graph.NewLabeled(4)
	g2.MergeEdge(2, 3, 1)
	g2.MergeEdge(0, 1, 3)
	m1 := core.Message{Kind: core.Prop, X: 5, G: g1}
	m2 := core.Message{Kind: core.Prop, X: 5, G: g2}
	a, b := Encode(m1), Encode(m2)
	if string(a) != string(b) {
		t.Fatal("encoding not canonical")
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		m := randomMessage(rng)
		if EncodedSize(m) != len(Encode(m)) {
			t.Fatal("EncodedSize disagrees with Encode")
		}
	}
}

func TestAppendEncodeExtends(t *testing.T) {
	m := randomMessage(rand.New(rand.NewSource(3)))
	prefix := []byte{0xAA, 0xBB}
	buf := AppendEncode(prefix, m)
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	got, err := Decode(buf[2:])
	if err != nil || !got.G.Equal(m.G) {
		t.Fatalf("decode after append failed: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	m := randomMessage(rand.New(rand.NewSource(4)))
	good := Encode(m)

	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Decode([]byte{7}); err == nil {
		t.Fatal("bad kind accepted")
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsBadEdges(t *testing.T) {
	// Handcraft: kind=0, x=0, n=1, bitmap=0x01, edges=1, edge (5,0,1).
	buf := []byte{0, 0, 1, 0x01, 1, 5, 0, 1}
	if _, err := Decode(buf); err == nil {
		t.Fatal("out-of-universe edge accepted")
	}
	// Zero label.
	buf = []byte{0, 0, 1, 0x01, 1, 0, 0, 0}
	if _, err := Decode(buf); err == nil {
		t.Fatal("zero label accepted")
	}
}

func TestEncodeNilGraphPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(core.Message{Kind: core.Prop})
}

func TestNegativeXRoundTrip(t *testing.T) {
	g := graph.NewLabeled(1)
	g.AddNode(0)
	m := core.Message{Kind: core.Decide, X: -123456789, G: g}
	got, err := Decode(Encode(m))
	if err != nil || got.X != m.X || got.Kind != core.Decide {
		t.Fatalf("negative X round-trip: %v %d", err, got.X)
	}
}

func TestMeter(t *testing.T) {
	var mt Meter
	mt.Observe(10)
	mt.Observe(30)
	if mt.Messages != 2 || mt.TotalBytes != 40 || mt.MaxBytes != 30 {
		t.Fatalf("Meter = %+v", mt)
	}
	if mt.Avg() != 20 {
		t.Fatalf("Avg = %v", mt.Avg())
	}
	empty := Meter{}
	if empty.Avg() != 0 {
		t.Fatal("empty Avg should be 0")
	}
	g := graph.NewLabeled(2)
	g.MergeEdge(0, 1, 1)
	mt.ObserveMessage(core.Message{Kind: core.Prop, X: 1, G: g})
	if mt.Messages != 3 {
		t.Fatal("ObserveMessage did not count")
	}
}

func TestSizeGrowsWithGraph(t *testing.T) {
	small := graph.NewLabeled(4)
	small.MergeEdge(0, 1, 1)
	big := graph.NewLabeled(4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			big.MergeEdge(u, v, 1+u+v)
		}
	}
	sSmall := EncodedSize(core.Message{Kind: core.Prop, X: 0, G: small})
	sBig := EncodedSize(core.Message{Kind: core.Prop, X: 0, G: big})
	if sBig <= sSmall {
		t.Fatalf("size not monotone in edges: %d vs %d", sSmall, sBig)
	}
}

// TestDecodeIntoReusesGraph pins the runtime's scratch-reuse contract:
// decoding into a message whose graph has the matching universe keeps
// the same graph storage (no allocation), resets stale content, and
// produces exactly the Decode result; a universe mismatch reallocates.
func TestDecodeIntoReusesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch core.Message
	for trial := 0; trial < 300; trial++ {
		m := randomMessage(rng)
		buf := Encode(m)
		prevG := scratch.G
		if err := DecodeInto(buf, &scratch); err != nil {
			t.Fatalf("DecodeInto: %v", err)
		}
		if scratch.Kind != m.Kind || scratch.X != m.X || !scratch.G.Equal(m.G) {
			t.Fatalf("DecodeInto mismatch:\n in  %v x=%d\n out %v x=%d",
				m.G, m.X, scratch.G, scratch.X)
		}
		if prevG != nil && prevG.N() == m.G.N() && scratch.G != prevG {
			t.Fatalf("trial %d: matching universe %d did not reuse graph storage", trial, m.G.N())
		}
		if prevG != nil && prevG.N() != m.G.N() && scratch.G == prevG {
			t.Fatalf("trial %d: universe change %d -> %d kept old storage", trial, prevG.N(), m.G.N())
		}
	}
}

// TestDecodeIntoSteadyStateAllocs pins that repeated decodes of
// same-universe messages allocate nothing once the scratch graph exists.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	m := randomMessage(rand.New(rand.NewSource(9)))
	buf := Encode(m)
	var scratch core.Message
	if err := DecodeInto(buf, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(buf, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocates %.1f/op, want 0", allocs)
	}
}
