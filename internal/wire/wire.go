// Package wire provides a compact binary encoding of Algorithm 1's
// messages (tag, xp, Gp). The paper's Section V claims the algorithm's
// worst-case message bit complexity is polynomial in n; this codec is
// what the experiment harness measures to reproduce that claim (E5).
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	byte   0      kind (0 = prop, 1 = decide)
//	varint        zig-zag encoded x
//	varint        n (universe size)
//	ceil(n/8)     node-presence bitmap
//	varint        edge count
//	per edge:     varint from, varint to, varint label
//
// Edges are emitted in deterministic (from, to) order, so encoding is
// canonical: Encode(m1) == Encode(m2) iff the messages are semantically
// equal.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"kset/internal/core"
	"kset/internal/graph"
)

var (
	// ErrTruncated reports an input shorter than its own header claims.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrBadKind reports an unknown message tag.
	ErrBadKind = errors.New("wire: unknown message kind")
)

// MaxUniverse is the largest universe size Decode accepts. A labeled
// graph costs Θ(n²) ints, so untrusted headers must not be able to
// demand huge universes from a few input bytes (found by FuzzDecode: a
// short input could previously request n = 2^20, an 8 TiB matrix).
// Simulated systems are orders of magnitude below this bound.
const MaxUniverse = 4096

// Encode serializes a message into a fresh buffer.
func Encode(m core.Message) []byte {
	return AppendEncode(nil, m)
}

// AppendEncode serializes m, appending to dst (which may be nil) and
// returning the extended buffer; use it to amortize allocations across
// rounds.
func AppendEncode(dst []byte, m core.Message) []byte {
	if m.G == nil {
		panic("wire: message with nil graph")
	}
	dst = append(dst, byte(m.Kind))
	dst = binary.AppendVarint(dst, m.X)
	n := m.G.N()
	dst = binary.AppendUvarint(dst, uint64(n))
	// Reserve the bitmap region inside dst and set bits in place, so
	// steady-state encoding into a reused buffer stays allocation-free.
	pad := (n + 7) / 8
	base := len(dst)
	for i := 0; i < pad; i++ {
		dst = append(dst, 0)
	}
	bitmap := dst[base : base+pad]
	m.G.ForEachNode(func(v int) { bitmap[v/8] |= 1 << (v % 8) })
	dst = binary.AppendUvarint(dst, uint64(m.G.NumEdges()))
	m.G.ForEachEdge(func(u, v, label int) {
		dst = binary.AppendUvarint(dst, uint64(u))
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, uint64(label))
	})
	return dst
}

// EncodedSize returns len(Encode(m)) without retaining the buffer.
func EncodedSize(m core.Message) int {
	return len(AppendEncode(nil, m))
}

// Decode parses a message previously produced by Encode.
func Decode(buf []byte) (core.Message, error) {
	var m core.Message
	err := DecodeInto(buf, &m)
	return m, err
}

// DecodeInto parses a message previously produced by Encode, writing it
// into *m. When m.G is non-nil with a universe matching the encoded one,
// its storage is reset and reused instead of allocating a fresh graph —
// the distributed runtime (internal/runtime) decodes n messages per
// process per round into per-sender scratch, and this keeps that path
// free of graph allocations in steady state. On error *m — including a
// reused graph's contents — may be partially overwritten.
func DecodeInto(buf []byte, m *core.Message) error {
	if len(buf) < 1 {
		return ErrTruncated
	}
	kind := core.Kind(buf[0])
	if kind != core.Prop && kind != core.Decide {
		return fmt.Errorf("%w: %d", ErrBadKind, buf[0])
	}
	m.Kind = kind
	buf = buf[1:]

	x, k := binary.Varint(buf)
	if k <= 0 {
		return ErrTruncated
	}
	m.X = x
	buf = buf[k:]

	un, k := binary.Uvarint(buf)
	if k <= 0 {
		return ErrTruncated
	}
	buf = buf[k:]
	n := int(un)
	if n < 0 || n > MaxUniverse {
		return fmt.Errorf("wire: implausible universe size %d", n)
	}
	bmLen := (n + 7) / 8
	if len(buf) < bmLen {
		return ErrTruncated
	}
	g := m.G
	if g != nil && g.N() == n {
		g.Reset()
	} else {
		g = graph.NewLabeled(n)
	}
	for v := 0; v < n; v++ {
		if buf[v/8]&(1<<(v%8)) != 0 {
			g.AddNode(v)
		}
	}
	buf = buf[bmLen:]

	edges, k := binary.Uvarint(buf)
	if k <= 0 {
		return ErrTruncated
	}
	buf = buf[k:]
	// Each stored edge is at least three varint bytes; reject lying
	// headers before looping.
	if edges > uint64(len(buf))/3 {
		return fmt.Errorf("wire: edge count %d exceeds remaining input %d", edges, len(buf))
	}
	for i := uint64(0); i < edges; i++ {
		u, k := binary.Uvarint(buf)
		if k <= 0 {
			return ErrTruncated
		}
		buf = buf[k:]
		v, k := binary.Uvarint(buf)
		if k <= 0 {
			return ErrTruncated
		}
		buf = buf[k:]
		label, k := binary.Uvarint(buf)
		if k <= 0 {
			return ErrTruncated
		}
		buf = buf[k:]
		// Compare in uint64 space: a >= 2^63 varint would overflow int to
		// a negative value and sail past an int comparison (the runfile
		// decoder had exactly this bug, found by FuzzDecode).
		if u >= uint64(n) || v >= uint64(n) {
			return fmt.Errorf("wire: edge endpoint out of universe")
		}
		if label == 0 || label > math.MaxInt32 {
			// The upper bound also keeps int(label) positive on 32-bit
			// platforms, where a larger value would wrap.
			return fmt.Errorf("wire: implausible edge label %d", label)
		}
		g.MergeEdge(int(u), int(v), int(label))
	}
	if len(buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(buf))
	}
	m.G = g
	return nil
}

// Meter accumulates wire-size statistics over a run; attach its Observe
// method to message traffic (the sim package does this automatically).
type Meter struct {
	Messages   int
	TotalBytes int
	MaxBytes   int
}

// Observe accounts one encoded message size.
func (mt *Meter) Observe(size int) {
	mt.Messages++
	mt.TotalBytes += size
	if size > mt.MaxBytes {
		mt.MaxBytes = size
	}
}

// ObserveMessage encodes and accounts a message.
func (mt *Meter) ObserveMessage(m core.Message) {
	mt.Observe(EncodedSize(m))
}

// Avg returns the mean message size in bytes.
func (mt *Meter) Avg() float64 {
	if mt.Messages == 0 {
		return 0
	}
	return float64(mt.TotalBytes) / float64(mt.Messages)
}
