// Package core implements the paper's contribution: Algorithm 1, which
// approximates the stable skeleton graph of a run and solves k-set
// agreement in every run admissible in the system Psrcs(k).
//
// Each process maintains
//
//   - PTp — the set of processes perceived as perpetually timely (line 9),
//   - xp  — the estimated decision value (line 27: minimum over timely
//     neighbors' estimates),
//   - Gp  — a round-labeled approximation of the stable skeleton, rebuilt
//     every round from the graphs received from timely neighbors
//     (lines 15-25), and
//   - decidedp — set when p decides, either because its approximation
//     became strongly connected in some round r >= n (line 28), or
//     because a timely neighbor sent a decide message (lines 10-13).
//
// The algorithm never needs to know k: the communication predicate of the
// run determines how many distinct values survive (Theorem 1 bounds the
// root components by k; Lemma 15 maps decision values onto them).
package core

import (
	"fmt"

	"kset/internal/graph"
	"kset/internal/rounds"
)

// Kind distinguishes the two message forms of Algorithm 1's sending
// function (lines 5-8).
type Kind uint8

const (
	// Prop is the (prop, x, G) message of undecided processes.
	Prop Kind = iota
	// Decide is the (decide, x, G) message broadcast forever after
	// deciding.
	Decide
)

func (k Kind) String() string {
	if k == Decide {
		return "decide"
	}
	return "prop"
}

// Message is the round message (tag, xp, Gp). Senders reuse message and
// graph storage across rounds (Process double-buffers both), so receivers
// must treat a message as immutable and must not retain it — or its graph
// — beyond the round it was delivered in; copy what must outlive the
// round. Both executors guarantee a sender never rewrites storage before
// every round-r reader has finished its round-r transition.
type Message struct {
	Kind Kind
	X    int64
	G    *graph.Labeled
}

// Via reports how a process decided.
type Via uint8

const (
	// ViaNone means the process has not decided.
	ViaNone Via = iota
	// ViaConnectivity is a line-29 decision: the approximation graph
	// became strongly connected in a round r >= n.
	ViaConnectivity
	// ViaMessage is a line-12 decision: a timely neighbor's decide
	// message was adopted.
	ViaMessage
)

func (v Via) String() string {
	switch v {
	case ViaConnectivity:
		return "connectivity"
	case ViaMessage:
		return "message"
	default:
		return "none"
	}
}

// Options collects the interpretation knobs documented in DESIGN.md §2.
// The zero value is the paper-faithful configuration.
type Options struct {
	// MergeOwnGraph additionally merges the process's own previous
	// approximation graph in lines 19-23, i.e. treats the message a
	// process "sends to itself" as a merge input. Replaying Figure 1
	// shows the paper does not do this (stale information must travel as
	// a one-round wave); the option exists as an ablation and changes no
	// correctness property, only how long stale edges linger.
	MergeOwnGraph bool
	// PurgeWindow overrides the age bound of line 24: edges with label
	// <= r - PurgeWindow are discarded. 0 means the paper's n. Values
	// below n-1 break Lemma 4 (legitimate information up to n-1 hops away
	// is purged in transit) and are rejected by Init.
	PurgeWindow int
	// ConservativeDecide raises line 28's guard from r >= n to
	// r >= 2n-1. The published guard is unsound: in runs whose skeleton
	// stabilizes after round 1, approximation graphs at rounds in
	// [n, r_ST+n-2] can be strongly connected through stale
	// pre-stabilization edges that the purge has not yet removed, letting
	// processes decide extra values and exceed the k-agreement bound
	// (adversary.ConsensusViolation is a deterministic 4-process witness
	// under Psrcs(1)). With r >= 2n-1, C^(r-n+1) ⊆ C^n, so the paper's
	// own Lemma 15 argument (via Lemma 14 and Lemma 12) goes through and
	// k-agreement is restored; termination degrades only by a constant
	// factor. See DESIGN.md §2 and EXPERIMENTS.md §E10.
	ConservativeDecide bool
}

// Process is one Algorithm 1 process. Create instances with New or
// NewFactory; the zero value is unusable.
type Process struct {
	self, n  int
	opts     Options
	purge    int
	proposal int64

	pt      graph.NodeSet  // PTp (line 1)
	x       int64          // xp (line 2)
	g       *graph.Labeled // Gp (line 3), current buffer
	decided bool           // decidedp (line 4)
	via     Via
	decideR int

	// Steady-state scratch: Transition and Send reuse this storage every
	// round instead of allocating, which keeps the simulator's hot path
	// garbage-free (see DESIGN.md §4).
	next  *graph.Labeled     // double buffer: the round-r rebuild target
	heard graph.NodeSet      // line-9 sender set
	reach graph.ReachScratch // prune (line 25) + connectivity (line 28)
	msgs  [2]Message         // ping-pong broadcast buffers for Send
}

var _ rounds.Algorithm = (*Process)(nil)
var _ rounds.Decider = (*Process)(nil)

// New returns a process proposing the given value with paper-faithful
// options.
func New(proposal int64) *Process { return NewWithOptions(proposal, Options{}) }

// NewWithOptions returns a process proposing the given value.
func NewWithOptions(proposal int64, opts Options) *Process {
	return &Process{proposal: proposal, opts: opts}
}

// NewFactory adapts a proposal vector to the executor's factory callback:
// process i proposes proposals[i].
func NewFactory(proposals []int64, opts Options) func(self int) rounds.Algorithm {
	return func(self int) rounds.Algorithm {
		return NewWithOptions(proposals[self], opts)
	}
}

// Init implements rounds.Algorithm (lines 1-4 of Algorithm 1).
func (p *Process) Init(self, n int) {
	p.self = self
	p.n = n
	p.purge = p.opts.PurgeWindow
	if p.purge == 0 {
		p.purge = n
	}
	if p.purge < n-1 {
		panic(fmt.Sprintf("core: purge window %d < n-1 = %d breaks Lemma 4", p.purge, n-1))
	}
	p.pt = graph.FullNodeSet(n) // PTp := Π
	p.x = p.proposal            // xp := vp
	p.g = graph.NewLabeled(n)   // Gp := ⟨{p}, ∅⟩
	p.g.AddNode(self)
	p.next = graph.NewLabeled(n)
	p.heard = graph.NewNodeSet(n)
	p.reach = graph.ReachScratch{}
	p.msgs = [2]Message{}
	p.decided = false
	p.via = ViaNone
}

// Send implements rounds.Algorithm (lines 5-8). It returns a *Message
// drawn from a two-buffer ping-pong (round r uses buffer r mod 2), so the
// per-round broadcast boxes a pointer instead of copying the message into
// a fresh interface allocation. Reusing buffer r mod 2 is safe in both
// executors: it was last exposed to readers in round r-2, and every
// round-(r-2) transition completes before any process sends for round r.
func (p *Process) Send(r int) any {
	m := &p.msgs[r&1]
	m.Kind = Prop
	if p.decided {
		m.Kind = Decide
	}
	m.X = p.x
	m.G = p.g
	return m
}

// Transition implements rounds.Algorithm (lines 9-30). recv entries are
// *Message values (or nil for dropped edges). The rebuild of lines 14-25
// writes into the spare half of a double buffer and swaps, so the graph
// broadcast in round r stays intact for its readers while round r+1 is
// computed; with the persistent scratch state this makes steady-state
// transitions allocation-free (pinned by TestTransitionAllocsPerRun).
func (p *Process) Transition(r int, recv []any) {
	// Line 9: update PTp — intersect with this round's senders.
	p.heard.Clear()
	for q, m := range recv {
		if m != nil {
			p.heard.Add(q)
		}
	}
	p.pt.IntersectWith(p.heard)
	if !p.pt.Has(p.self) {
		panic("core: process lost itself from PT (model requires self-loops)")
	}

	// Lines 10-13: adopt a decide message from a timely neighbor. If
	// several arrive, adopt the smallest value (any choice is safe; the
	// adopted value is itself a decision value).
	if !p.decided {
		adopted := false
		var best int64
		p.pt.ForEach(func(q int) {
			m := recv[q].(*Message)
			if m.Kind != Decide {
				return
			}
			if !adopted || m.X < best {
				adopted, best = true, m.X
			}
		})
		if adopted {
			p.x = best
			p.decided = true
			p.via = ViaMessage
			p.decideR = r
		}
	}

	// Lines 14-25: rebuild the approximation graph into the spare buffer
	// (never into p.g — that graph is still being read by this round's
	// receivers), then swap.
	ng := p.next
	ng.Reset()
	ng.AddNode(p.self) // line 15: Gp := ⟨{p}, ∅⟩
	p.pt.ForEach(func(q int) {
		ng.MergeEdge(q, p.self, r) // line 17: (q -r-> p)
		if q == p.self && !p.opts.MergeOwnGraph {
			// Figure-faithful semantics: the process's own previous
			// graph is not a merge input; its content reaches p only
			// through timely neighbors.
			return
		}
		// Lines 18-23: Vp ∪= Vq and per-edge max-merge, as one
		// matrix-level pass.
		ng.MergeFrom(recv[q].(*Message).G)
	})
	ng.PurgeOlderThan(r - p.purge)                 // line 24
	ng.PruneUnreachableToInPlace(p.self, &p.reach) // line 25
	p.g, p.next = ng, p.g

	// Lines 26-30: update the estimate and try to decide.
	if !p.decided {
		first := true
		p.pt.ForEach(func(q int) { // line 27: xp := min over timely senders
			v := recv[q].(*Message).X
			if first || v < p.x {
				p.x = v
			}
			first = false
		})
		floor := p.n // line 28's published guard: r ≥ n
		if p.opts.ConservativeDecide {
			floor = 2*p.n - 1 // repaired guard, see Options.ConservativeDecide
		}
		if r >= floor && p.g.StronglyConnectedInto(&p.reach) {
			p.decided = true // lines 29-30
			p.via = ViaConnectivity
			p.decideR = r
		}
	}
}

// Proposal implements rounds.Decider.
func (p *Process) Proposal() int64 { return p.proposal }

// Decided implements rounds.Decider.
func (p *Process) Decided() bool { return p.decided }

// Decision implements rounds.Decider; it panics if the process has not
// decided (decisions are irrevocable once taken).
func (p *Process) Decision() (int64, int) {
	if !p.decided {
		panic("core: Decision before deciding")
	}
	return p.x, p.decideR
}

// DecidedVia reports which rule produced the decision.
func (p *Process) DecidedVia() Via { return p.via }

// Estimate returns the current estimated decision value xp.
func (p *Process) Estimate() int64 { return p.x }

// PT returns a copy of the current timely neighborhood PTp.
func (p *Process) PT() graph.NodeSet { return p.pt.Clone() }

// Approx returns a copy of the current approximation graph Gp.
func (p *Process) Approx() *graph.Labeled { return p.g.Clone() }

// PTView returns the current timely neighborhood PTp without copying.
// The returned set aliases live process state: it is valid only until the
// process's next Transition and must be treated as read-only. It exists
// for observer-path invariant checkers (internal/check), which inspect
// every process every round and must not add allocations to the hot path.
func (p *Process) PTView() graph.NodeSet { return p.pt }

// ApproxView returns the current approximation graph Gp without copying.
// Same aliasing contract as PTView: read-only, valid only until the next
// Transition (the graph is one half of a double buffer whose spare half
// is rewritten every round).
func (p *Process) ApproxView() *graph.Labeled { return p.g }

// PurgeWindow returns the age bound of line 24 in effect for this
// process: edges with label <= r - PurgeWindow are discarded.
func (p *Process) PurgeWindow() int { return p.purge }

// DecisionFloor returns the earliest round in which the line-28
// connectivity decision may fire under the configured options: n for the
// paper's published guard, 2n-1 for the repaired conservative one.
func (p *Process) DecisionFloor() int {
	if p.opts.ConservativeDecide {
		return 2*p.n - 1
	}
	return p.n
}

// Self returns the process id.
func (p *Process) Self() int { return p.self }
