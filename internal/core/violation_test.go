package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/predicate"
)

// TestLemma15CounterexamplePaperGuard reproduces, deterministically, the
// violation of the paper's Lemma 15/Theorem 16 under the published
// line-28 guard (r >= n): the ConsensusViolation run satisfies Psrcs(1)
// yet two distinct values are decided. See adversary.ConsensusViolation
// for the full construction and EXPERIMENTS.md §E10.
func TestLemma15CounterexamplePaperGuard(t *testing.T) {
	adv := adversary.ConsensusViolation()
	props := adversary.ConsensusViolationProposals()

	skel := adv.StableSkeleton()
	if got := predicate.MinK(skel); got != 1 {
		t.Fatalf("MinK = %d, counterexample requires Psrcs(1)", got)
	}

	// Both interpretation variants exhibit the violation (MergeOwnGraph
	// only shifts p4's singleton-connectivity round from 4 to 5, because
	// it retains the stale in-edge (p1 1->p4) until the purge).
	for _, opts := range []Options{{}, {MergeOwnGraph: true}} {
		h := run(t, adv, props, 20, opts)
		vals := h.distinctDecisions(t)
		if len(vals) != 2 || !vals[1] || !vals[4] {
			t.Fatalf("mergeOwn=%v: decisions = %v, expected the documented "+
				"violation {1, 4}", opts.MergeOwnGraph, vals)
		}
	}

	// Exact mechanism, pinned for the paper-faithful default: p1, p2, p3
	// decide 1 in round n = 4 via connectivity through the stale edge;
	// p4 decides its frozen estimate 4 in the same round as a singleton.
	h := run(t, adv, props, 20, Options{})
	for p := 0; p <= 2; p++ {
		v, r := h.procs[p].Decision()
		if v != 1 || r != 4 || h.procs[p].DecidedVia() != ViaConnectivity {
			t.Fatalf("p%d decided (%d, %d, %v), want (1, 4, connectivity)",
				p+1, v, r, h.procs[p].DecidedVia())
		}
	}
	if v, r := h.procs[3].Decision(); v != 4 || r != 4 {
		t.Fatalf("p4 decided (%d, %d), want (4, 4)", v, r)
	}
	// The stale edge is present in p1's round-4 approximation and purged
	// in round 5.
	if h.approxAt(4, 0).Label(0, 3) != 1 {
		t.Fatal("stale edge (p1 -1-> p4) missing from p1's round-4 graph")
	}
	if h.approxAt(5, 0).HasEdge(0, 3) {
		t.Fatal("stale edge survived the round-5 purge")
	}
}

// TestLemma15RepairConservativeGuard verifies the repair: with the
// line-28 guard raised to r >= 2n-1 the stale edges are purged before any
// decision may happen, p4 decides at round 7, everyone else adopts its
// value, and consensus holds — the paper's own proof becomes sound for
// this guard.
func TestLemma15RepairConservativeGuard(t *testing.T) {
	adv := adversary.ConsensusViolation()
	props := adversary.ConsensusViolationProposals()
	h := run(t, adv, props, 20, Options{ConservativeDecide: true})
	vals := h.distinctDecisions(t)
	if len(vals) != 1 || !vals[4] {
		t.Fatalf("repaired run decided %v, want consensus on 4", vals)
	}
	if v, r := h.procs[3].Decision(); v != 4 || r != 7 || h.procs[3].DecidedVia() != ViaConnectivity {
		t.Fatalf("p4 decided (%d, %d), want (4, 7) via connectivity", v, r)
	}
	for p := 0; p <= 2; p++ {
		v, r := h.procs[p].Decision()
		if v != 4 || r != 8 || h.procs[p].DecidedVia() != ViaMessage {
			t.Fatalf("p%d decided (%d, %d, %v), want (4, 8, message)",
				p+1, v, r, h.procs[p].DecidedVia())
		}
	}
}

// TestConservativeDecideKAgreementBattery asserts the repaired guard
// respects the MinK bound across a randomized battery that includes the
// regimes where the published guard is vulnerable (late stabilization,
// universal sources).
func TestConservativeDecideKAgreementBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		var adv = adversary.RandomSingleSource(n, rng.Intn(2*n), 0.3, 0.3, rng)
		if trial%2 == 0 {
			adv = adversary.RandomSources(n, 1+rng.Intn(3), rng.Intn(2*n), 0.3, rng)
		}
		h := run(t, adv, seqProposals(n), 8*n, Options{ConservativeDecide: true})
		stable := h.tracker.At(h.rounds)
		vals := h.distinctDecisions(t)
		if got, k := len(vals), predicate.MinK(stable); got > k {
			t.Fatalf("trial %d (n=%d): %d decisions > MinK %d under repaired guard",
				trial, n, got, k)
		}
		checkValidity(t, h, seqProposals(n))
		checkIrrevocability(t, h)
	}
}

// TestPaperGuardViolationRate quantifies how often the published guard
// exceeds MinK on the vulnerable family (randomized single-source runs
// with noise): the rate must be nonzero (the counterexample family is
// real) — this is the statistic EXPERIMENTS.md §E10 reports.
func TestPaperGuardViolationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(515151))
	violations := 0
	const trials = 80
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(5)
		adv := adversary.RandomSingleSource(n, 1+rng.Intn(n), 0.3, 0.3, rng)
		h := run(t, adv, seqProposals(n), 8*n, Options{})
		stable := h.tracker.At(h.rounds)
		if len(h.distinctDecisions(t)) > predicate.MinK(stable) {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("expected the published guard to violate MinK on this family")
	}
	t.Logf("published guard violated MinK in %d/%d runs", violations, trials)
}
