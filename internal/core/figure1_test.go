package core

import (
	"testing"

	"kset/internal/adversary"
)

// figure1History runs Algorithm 1 on the reconstructed Figure 1 run.
func figure1History(t *testing.T) *runHistory {
	t.Helper()
	return run(t, adversary.Figure1(), seqProposals(6), 12, Options{})
}

// TestFigure1ApproximationLabels reproduces the label multisets of the
// paper's Figure 1c-1h (p6's approximations G¹p6..G⁶p6). Rounds 1-4 match
// the figure exactly. In rounds 5 and 6 a mechanical execution retains
// one stale edge (p5 -1-> p4) that the hand-drawn figure omits; it is
// purged by line 24 in round 7 (see DESIGN.md §3 and EXPERIMENTS.md §E1).
func TestFigure1ApproximationLabels(t *testing.T) {
	h := figure1History(t)
	want := adversary.Figure1LabelMultisets()
	const p6 = 5
	for r := 1; r <= 4; r++ {
		got := h.approxAt(r, p6).LabelMultiset()
		if !equalInts(got, want[r-1]) {
			t.Errorf("G%d_p6 labels = %v, figure says %v", r, got, want[r-1])
		}
	}
	for r := 5; r <= 6; r++ {
		got := h.approxAt(r, p6)
		wantLabels := append(append([]int{}, want[r-1]...), 1) // + stale (p5 1->p4)
		if !equalInts(got.LabelMultiset(), wantLabels) {
			t.Errorf("G%d_p6 labels = %v, want figure %v plus one stale 1",
				r, got.LabelMultiset(), want[r-1])
		}
		if got.Label(4, 3) != 1 {
			t.Errorf("round %d: stale edge should be exactly (p5 -1-> p4), got label %d",
				r, got.Label(4, 3))
		}
	}
}

// TestFigure1ApproximationEdges pins down the exact edges (not just label
// multisets) of p6's early approximations, matching the reconstruction
// derivation in DESIGN.md.
func TestFigure1ApproximationEdges(t *testing.T) {
	h := figure1History(t)
	const p6 = 5
	type e struct{ u, v, l int }
	wantEdges := map[int][]e{
		1: {{4, 5, 1}, {1, 5, 1}},                       // p5-1->p6, p2-1->p6
		2: {{4, 5, 2}, {1, 5, 2}, {3, 4, 1}, {0, 1, 1}}, // + p4-1->p5, p1-1->p2
		3: {{4, 5, 3}, {3, 4, 2}, {2, 3, 1}, {4, 3, 1}}, // chain + stale p5-1->p4
		4: {{4, 5, 4}, {3, 4, 3}, {2, 3, 2}, {4, 3, 2}, {4, 2, 1}, {3, 2, 1}, {1, 2, 1}},
		5: {{4, 5, 5}, {3, 4, 4}, {2, 3, 3}, {4, 2, 2}, {3, 2, 2}, {4, 3, 1}},
		6: {{4, 5, 6}, {3, 4, 5}, {2, 3, 4}, {4, 2, 3}, {4, 3, 1}},
	}
	for r := 1; r <= 6; r++ {
		g := h.approxAt(r, p6)
		for _, ed := range wantEdges[r] {
			if got := g.Label(ed.u, ed.v); got != ed.l {
				t.Errorf("round %d: label(p%d->p%d) = %d, want %d",
					r, ed.u+1, ed.v+1, got, ed.l)
			}
		}
		// No unexpected non-self-loop edges.
		count := 0
		g.ForEachEdge(func(u, v, _ int) {
			if u != v {
				count++
			}
		})
		if count != len(wantEdges[r]) {
			t.Errorf("round %d: %d non-self edges, want %d: %v",
				r, count, len(wantEdges[r]), g)
		}
	}
}

// TestFigure1SteadyState verifies that from round 8 on, p6's
// approximation is exactly the ancestor chain of the stable skeleton with
// labels r, r-1, r-2, r-3 — the state Figure 1h depicts.
func TestFigure1SteadyState(t *testing.T) {
	h := figure1History(t)
	const p6 = 5
	for r := 10; r <= 12; r++ {
		g := h.approxAt(r, p6)
		want := []struct{ u, v, l int }{
			{4, 5, r},     // p5 -r-> p6
			{3, 4, r - 1}, // p4 -(r-1)-> p5
			{2, 3, r - 2}, // p3 -(r-2)-> p4
			{4, 2, r - 3}, // p5 -(r-3)-> p3
		}
		for _, ed := range want {
			if got := g.Label(ed.u, ed.v); got != ed.l {
				t.Fatalf("round %d: label(p%d->p%d) = %d, want %d",
					r, ed.u+1, ed.v+1, got, ed.l)
			}
		}
		if got := g.LabelMultiset(); !equalInts(got, []int{r, r - 1, r - 2, r - 3}) {
			t.Fatalf("round %d labels = %v", r, got)
		}
	}
}

// TestFigure1Decisions pins the complete decision pattern of the run.
func TestFigure1Decisions(t *testing.T) {
	h := figure1History(t)
	// p1, p2 decide min(v1,v2) = 1. The transient round-1 edge p2->p3
	// leaks v2 = 2 into the {p3,p4,p5} component, so it decides 2; p6
	// adopts p5's decision.
	wantVal := []int64{1, 1, 2, 2, 2, 2}
	// p5's connectivity check stays blocked through round 6 by the stale
	// (p2 1->p3) edge in its approximation; in round 7 it adopts the
	// decide message of p4 (its timely neighbor, decided in round 6)
	// before the now-unblocked connectivity rule could fire.
	wantVia := []Via{ViaConnectivity, ViaConnectivity, ViaConnectivity,
		ViaConnectivity, ViaMessage, ViaMessage}
	// p1..p4 decide at round 6 (n=6, graphs connected from the start);
	// p6 hears p5's decide message in round 8.
	wantRound := []int{6, 6, 6, 6, 7, 8}
	for i, p := range h.procs {
		if !p.Decided() {
			t.Fatalf("p%d undecided", i+1)
		}
		v, r := p.Decision()
		if v != wantVal[i] || r != wantRound[i] || p.DecidedVia() != wantVia[i] {
			t.Errorf("p%d decided (%d, round %d, via %v), want (%d, %d, %v)",
				i+1, v, r, p.DecidedVia(), wantVal[i], wantRound[i], wantVia[i])
		}
	}
	if vals := h.distinctDecisions(t); len(vals) != 2 {
		t.Fatalf("distinct decisions = %v, want 2 <= k=3", vals)
	}
}

// TestFigure1KAgreement: the run satisfies Psrcs(3); at most 3 values.
func TestFigure1KAgreement(t *testing.T) {
	h := figure1History(t)
	checkValidity(t, h, seqProposals(6))
	checkIrrevocability(t, h)
	checkEstimateMonotone(t, h)
	if vals := h.distinctDecisions(t); len(vals) > 3 {
		t.Fatalf("%d distinct decisions violate 3-agreement", len(vals))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
