package core

import (
	"testing"

	"kset/internal/graph"
)

// White-box unit tests of single Transition steps: each test drives one
// process through hand-built message vectors and checks the pseudocode
// line by line, independent of any executor or adversary.

// msg builds a prop message with the given estimate and graph edges.
func msg(n int, x int64, edges ...[3]int) *Message {
	g := graph.NewLabeled(n)
	for _, e := range edges {
		g.MergeEdge(e[0], e[1], e[2])
	}
	return &Message{Kind: Prop, X: x, G: g}
}

// decideMsg builds a decide message.
func decideMsg(n int, x int64) *Message {
	g := graph.NewLabeled(n)
	return &Message{Kind: Decide, X: x, G: g}
}

func newProc(t *testing.T, self, n int, proposal int64, opts Options) *Process {
	t.Helper()
	p := NewWithOptions(proposal, opts)
	p.Init(self, n)
	return p
}

func TestTransitionLine9PTIntersection(t *testing.T) {
	p := newProc(t, 0, 4, 10, Options{})
	// Round 1: hears p1 (self), p2, p3.
	recv := []any{p.Send(1), msg(4, 20), msg(4, 30), nil}
	p.Transition(1, recv)
	if !p.PT().Equal(graph.NodeSetOf(0, 1, 2)) {
		t.Fatalf("PT = %v", p.PT())
	}
	// Round 2: hears p1, p3 only: PT shrinks to the intersection.
	recv = []any{p.Send(2), nil, msg(4, 30), nil}
	p.Transition(2, recv)
	if !p.PT().Equal(graph.NodeSetOf(0, 2)) {
		t.Fatalf("PT = %v", p.PT())
	}
	// Round 3: hears everyone, but PT can never grow back.
	recv = []any{p.Send(3), msg(4, 20), msg(4, 30), msg(4, 40)}
	p.Transition(3, recv)
	if !p.PT().Equal(graph.NodeSetOf(0, 2)) {
		t.Fatalf("PT grew back: %v", p.PT())
	}
}

func TestTransitionLine17FreshEdges(t *testing.T) {
	p := newProc(t, 1, 3, 5, Options{})
	recv := []any{msg(3, 1), p.Send(1), msg(3, 9)}
	p.Transition(1, recv)
	g := p.Approx()
	for _, from := range []int{0, 1, 2} {
		if g.Label(from, 1) != 1 {
			t.Fatalf("fresh edge p%d->p2 label = %d, want 1", from+1, g.Label(from, 1))
		}
	}
}

func TestTransitionLine27MinOverTimely(t *testing.T) {
	p := newProc(t, 0, 3, 50, Options{})
	recv := []any{p.Send(1), msg(3, 20), msg(3, 80)}
	p.Transition(1, recv)
	if p.Estimate() != 20 {
		t.Fatalf("estimate = %d, want 20", p.Estimate())
	}
	// A smaller value from a process no longer timely must be ignored.
	recv = []any{p.Send(2), nil, msg(3, 1)}
	p.Transition(2, recv)
	// p3 still timely (heard both rounds): 1 adopted.
	if p.Estimate() != 1 {
		t.Fatalf("estimate = %d, want 1", p.Estimate())
	}
	recv = []any{p.Send(3), msg(3, 0), msg(3, 1)}
	p.Transition(3, recv)
	// p2 dropped out of PT in round 2; its 0 must be ignored forever.
	if p.Estimate() != 1 {
		t.Fatalf("estimate = %d, want 1 (0 from non-timely p2)", p.Estimate())
	}
}

func TestTransitionLines10to13DecideAdoption(t *testing.T) {
	p := newProc(t, 0, 3, 50, Options{})
	// Decide message from a timely neighbor: adopt immediately.
	recv := []any{p.Send(1), decideMsg(3, 33), msg(3, 70)}
	p.Transition(1, recv)
	if !p.Decided() || p.DecidedVia() != ViaMessage {
		t.Fatal("decide message from timely neighbor not adopted")
	}
	if v, r := p.Decision(); v != 33 || r != 1 {
		t.Fatalf("decision (%d, %d), want (33, 1)", v, r)
	}
}

func TestTransitionDecideFromNonTimelyIgnored(t *testing.T) {
	p := newProc(t, 0, 3, 50, Options{})
	// Round 1: p2 silent -> drops out of PT.
	p.Transition(1, []any{p.Send(1), nil, msg(3, 70)})
	// Round 2: p2 sends a decide message — but p2 ∉ PT: ignore.
	p.Transition(2, []any{p.Send(2), decideMsg(3, 1), msg(3, 70)})
	if p.Decided() {
		t.Fatal("adopted decide message from non-timely process")
	}
}

func TestTransitionLine24Purge(t *testing.T) {
	n := 3
	p := newProc(t, 0, n, 5, Options{})
	// Round 1: p2 forwards an edge labeled 1.
	p.Transition(1, []any{p.Send(1), msg(n, 9, [3]int{2, 1, 1}), msg(n, 9)})
	if p.Approx().Label(2, 1) != 1 {
		t.Fatal("merged edge missing")
	}
	// Rounds 2..n: the label-1 edge must survive until round n and be
	// purged in round n+1 (label <= r-n). Keep re-merging it via p2.
	for r := 2; r <= n+1; r++ {
		p.Transition(r, []any{p.Send(r), msg(n, 9, [3]int{2, 1, 1}), msg(n, 9)})
		got := p.Approx().HasEdge(2, 1)
		if r <= n && !got {
			t.Fatalf("round %d: edge purged too early", r)
		}
		if r == n+1 && got {
			t.Fatalf("round %d: edge survived past the purge window", r)
		}
	}
}

func TestTransitionLine25Prune(t *testing.T) {
	n := 4
	p := newProc(t, 0, n, 5, Options{})
	// p2 forwards an edge p3->p4 — neither endpoint reaches p1, so the
	// prune must drop them; the edge p4->p2 chains into p2->p1 (fresh)
	// and survives.
	forwarded := msg(n, 9, [3]int{2, 3, 1}, [3]int{3, 1, 1})
	p.Transition(1, []any{p.Send(1), forwarded, nil, nil})
	g := p.Approx()
	if g.HasNode(2) && !g.HasEdge(2, 3) {
		t.Fatal("inconsistent prune")
	}
	// p4 reaches p1 via p4->p2->p1: kept. p3->p4 edge: p3 reaches p1
	// through p4: kept too.
	if !g.HasEdge(3, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("reachable chain pruned: %v", g)
	}
	if !g.HasEdge(2, 3) {
		t.Fatalf("p3 reaches p1 via p4, must be kept: %v", g)
	}

	// Now an edge into a dead end: p3->p4 where p4 has no out-edges to
	// anyone reaching p1.
	q := newProc(t, 0, n, 5, Options{})
	deadEnd := msg(n, 9, [3]int{2, 3, 1})
	q.Transition(1, []any{q.Send(1), deadEnd, nil, nil})
	g = q.Approx()
	if g.HasNode(2) || g.HasNode(3) {
		t.Fatalf("dead-end nodes survived prune: %v", g)
	}
}

func TestTransitionMaxMergeAcrossSenders(t *testing.T) {
	n := 3
	p := newProc(t, 0, n, 5, Options{})
	// Two senders carry the same edge with different labels: max wins.
	a := msg(n, 9, [3]int{2, 1, 3})
	b := msg(n, 9, [3]int{2, 1, 7})
	// Labels must be <= r; run at round 8 via 7 warmup rounds.
	for r := 1; r <= 7; r++ {
		p.Transition(r, []any{p.Send(r), msg(n, 9), msg(n, 9)})
	}
	p.Transition(8, []any{p.Send(8), a, b})
	if got := p.Approx().Label(2, 1); got != 7 {
		t.Fatalf("label = %d, want max 7", got)
	}
}

func TestTransitionSelfLossPanics(t *testing.T) {
	p := newProc(t, 0, 2, 1, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("losing own message must panic (model violation)")
		}
	}()
	p.Transition(1, []any{nil, msg(2, 9)})
}

func TestSendKindFollowsDecision(t *testing.T) {
	p := newProc(t, 0, 1, 7, Options{})
	if p.Send(1).(*Message).Kind != Prop {
		t.Fatal("undecided process must send prop")
	}
	p.Transition(1, []any{p.Send(1)})
	if !p.Decided() {
		t.Fatal("singleton must decide at round 1")
	}
	if p.Send(2).(*Message).Kind != Decide {
		t.Fatal("decided process must send decide")
	}
}

func TestTransitionAfterDecisionKeepsApproximating(t *testing.T) {
	// The graph approximation continues after deciding (lines 14-25 are
	// unconditional); only the estimate freezes.
	p := newProc(t, 0, 2, 3, Options{})
	p.Transition(1, []any{p.Send(1), decideMsg(2, 1)})
	if !p.Decided() {
		t.Fatal("setup: should have adopted")
	}
	est := p.Estimate()
	for r := 2; r <= 5; r++ {
		p.Transition(r, []any{p.Send(r), msg(2, 0, [3]int{1, 1, r - 1})})
		if p.Estimate() != est {
			t.Fatal("estimate changed after decision")
		}
		if p.Approx().Label(0, 0) != r {
			t.Fatal("approximation stopped refreshing after decision")
		}
	}
}
