package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
)

// TestTheorem2LowerBoundExactlyK — in the paper's Theorem 2 run, the
// processes of L and the source s can only learn their own values, so
// with pairwise distinct inputs exactly k distinct decisions emerge:
// Psrcs(k) cannot solve (k-1)-set agreement, and Algorithm 1 realizes
// exactly that bound (tightness).
func TestTheorem2LowerBoundExactlyK(t *testing.T) {
	for n := 4; n <= 9; n++ {
		for k := 2; k < n; k++ {
			adv := adversary.LowerBound(n, k)
			h := run(t, adv, seqProposals(n), 3*n+5, Options{})
			vals := h.distinctDecisions(t)
			if len(vals) != k {
				t.Fatalf("n=%d k=%d: %d distinct decisions, want exactly %d (%v)",
					n, k, len(vals), k, vals)
			}
			// L members and s decide their own values.
			adversary.LowerBoundIsolated(k).ForEach(func(p int) {
				v, _ := h.procs[p].Decision()
				if v != int64(p+1) {
					t.Fatalf("isolated p%d decided %d, want own value %d", p+1, v, p+1)
				}
			})
			s := adversary.LowerBoundSource(k)
			if v, _ := h.procs[s].Decision(); v != int64(s+1) {
				t.Fatalf("source s=p%d decided %d, want own value", s+1, v)
			}
			// Everyone else adopts s's value (minimum of {p, s} chains).
			for p := s + 1; p < n; p++ {
				if v, _ := h.procs[p].Decision(); v != int64(s+1) {
					t.Fatalf("downstream p%d decided %d, want s's value %d", p+1, v, s+1)
				}
			}
		}
	}
}

// TestEventualPsrcsIsTooWeak — the Section III argument: with an
// isolation prefix of at least n rounds, every approximation graph is the
// singleton {p}, trivially strongly connected, so every process decides
// its own value in round n: n distinct decisions even though the run
// eventually satisfies any Psrcs(k).
func TestEventualPsrcsIsTooWeak(t *testing.T) {
	for n := 2; n <= 8; n++ {
		adv := adversary.Eventual(adversary.Complete(n), n)
		h := run(t, adv, seqProposals(n), 3*n, Options{})
		vals := h.distinctDecisions(t)
		if len(vals) != n {
			t.Fatalf("n=%d: %d distinct decisions, want all n", n, len(vals))
		}
		for p := 0; p < n; p++ {
			v, r := h.procs[p].Decision()
			if v != int64(p+1) || r != n {
				t.Fatalf("p%d decided (%d, round %d), want own value at round n=%d",
					p+1, v, r, n)
			}
		}
	}
}

// TestEventualShortPrefixHarmless — an isolation prefix shorter than n
// does not trigger the premature singleton decision: the skeleton's
// guarantees still bound decisions by MinK.
func TestEventualShortPrefixHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		base := adversary.RandomSources(n, 1+rng.Intn(3), 0, 0, rng)
		adv := adversary.Eventual(base, rng.Intn(n-1))
		h := run(t, adv, seqProposals(n), 6*n, Options{})
		stable := h.tracker.At(h.rounds)
		if got, k := len(h.distinctDecisions(t)), predicate.MinK(stable); got > k {
			t.Fatalf("%d decisions > MinK %d with short prefix", got, k)
		}
	}
}

// TestConsensusInWellBehavedRuns — Section V: "the algorithm actually
// solves consensus in sufficiently well-behaved runs". The precise
// condition is Psrcs(1), i.e. MinK = 1 (a universal 2-source). Under the
// published line-28 guard this is NOT always achieved (see
// TestLemma15CounterexamplePaperGuard — seed 78 here reproduces a random
// instance of the same flaw); the repaired guard r >= 2n-1 restores the
// guarantee, which is what this test asserts.
func TestConsensusInWellBehavedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		adv := adversary.RandomSingleSource(n, rng.Intn(4), 0.3, 0.3, rng)
		h := run(t, adv, seqProposals(n), 6*n+8, Options{ConservativeDecide: true})
		if vals := h.distinctDecisions(t); len(vals) != 1 {
			t.Fatalf("Psrcs(1) run produced %d values: %v", len(vals), vals)
		}
	}
}

// TestSingleRootIsNotEnoughForConsensus — a sharper reading of Section V
// that the reproduction pins down: one root component does NOT guarantee
// consensus. Noisy prefixes can let a downstream process assemble a
// strongly connected approximation out of stale prefix edges and decide
// a second value before any decide message reaches it. The theorem bound
// (distinct <= MinK) always holds; this test documents a concrete
// 2-value single-root run and checks the bound across a random battery.
func TestSingleRootIsNotEnoughForConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(20110229))
	multiValue := 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		adv := adversary.RandomSources(n, 1, rng.Intn(n), 0.2, rng)
		h := run(t, adv, seqProposals(n), 6*n+8, Options{})
		stable := h.tracker.At(h.rounds)
		vals := h.distinctDecisions(t)
		if len(vals) > predicate.MinK(stable) {
			t.Fatalf("distinct=%d > MinK=%d: theorem violated", len(vals), predicate.MinK(stable))
		}
		if len(vals) > 1 {
			multiValue++
		}
	}
	if multiValue == 0 {
		t.Fatal("expected at least one multi-value single-root run in the battery " +
			"(the phenomenon this test documents)")
	}
}

// TestCompleteGraphConsensusOnMinimum — fully synchronous runs decide the
// global minimum at round n.
func TestCompleteGraphConsensusOnMinimum(t *testing.T) {
	for n := 1; n <= 8; n++ {
		h := run(t, adversary.Complete(n), seqProposals(n), n+2, Options{})
		for p := 0; p < n; p++ {
			v, r := h.procs[p].Decision()
			if v != 1 || r != n {
				t.Fatalf("n=%d: p%d decided (%d, %d), want (1, %d)", n, p+1, v, r, n)
			}
		}
	}
}

// TestIsolationForeverDecidesOwnValues — the Ptrue system: all processes
// isolated forever, each decides its own value at round n (and k-set
// agreement for k=n is trivially satisfied; no smaller k is admissible).
func TestIsolationForeverDecidesOwnValues(t *testing.T) {
	n := 5
	h := run(t, adversary.Isolation(n), seqProposals(n), 2*n, Options{})
	for p := 0; p < n; p++ {
		v, r := h.procs[p].Decision()
		if v != int64(p+1) || r != n {
			t.Fatalf("p%d decided (%d, %d), want own value at round n", p+1, v, r)
		}
	}
}

// TestSingleProcess — n=1 is the degenerate consensus: decide own value
// in round 1.
func TestSingleProcess(t *testing.T) {
	h := run(t, adversary.Complete(1), []int64{42}, 3, Options{})
	v, r := h.procs[0].Decision()
	if v != 42 || r != 1 {
		t.Fatalf("decision (%d, %d), want (42, 1)", v, r)
	}
	if h.procs[0].DecidedVia() != ViaConnectivity {
		t.Fatal("single process should decide via connectivity")
	}
}

// TestPartitionedConsensusPerBlock — each partition reaches internal
// consensus on its block minimum (the motivating partitionable-system
// scenario).
func TestPartitionedConsensusPerBlock(t *testing.T) {
	n := 9
	blocks := adversary.EvenPartition(n, 3)
	adv := adversary.Partition(n, blocks)
	h := run(t, adv, seqProposals(n), 2*n, Options{})
	for _, block := range blocks {
		min := int64(block[0] + 1)
		for _, p := range block {
			if int64(p+1) < min {
				min = int64(p + 1)
			}
		}
		for _, p := range block {
			v, _ := h.procs[p].Decision()
			if v != min {
				t.Fatalf("p%d decided %d, want block minimum %d", p+1, v, min)
			}
		}
	}
	if vals := h.distinctDecisions(t); len(vals) != 3 {
		t.Fatalf("distinct decisions = %d, want one per partition", len(vals))
	}
}

// TestCrashRunsStillAgree — under pure crash failures the skeleton's
// surviving structure still bounds decisions by MinK; validity and
// termination hold for all (including crashed-but-internally-correct)
// processes.
func TestCrashRunsStillAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(6)
		f := rng.Intn(n)
		adv, _ := adversary.RandomCrashes(n, f, 4, rng)
		h := run(t, adv, seqProposals(n), 8*n, Options{})
		stable := h.tracker.At(h.rounds)
		k := predicate.MinK(stable)
		if got := len(h.distinctDecisions(t)); got > k {
			t.Fatalf("crash run: %d decisions > MinK %d", got, k)
		}
		checkValidity(t, h, seqProposals(n))
	}
}

// TestDecideMessagesDominate — a late-connected process must adopt the
// decide message of its timely neighbor rather than invent a value.
func TestDecideMessagesDominate(t *testing.T) {
	// Chain: p1 is a root (hears only itself), p2 hears p1, p3 hears p2.
	g := graph.NewFullDigraph(3)
	g.AddSelfLoops()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := run(t, adversary.Static(g), []int64{7, 5, 9}, 12, Options{})
	// p1 decides its own value 7 at round n=3 (singleton root).
	v, r := h.procs[0].Decision()
	if v != 7 || r != 3 {
		t.Fatalf("p1 decided (%d, %d), want (7, 3)", v, r)
	}
	// p2 and p3: non-root, never strongly connected; they adopt 7 via
	// decide messages at rounds 4 and 5, even though their own estimates
	// (min of upstream values) are already 5.
	for _, tc := range []struct {
		p, round int
	}{{1, 4}, {2, 5}} {
		v, r := h.procs[tc.p].Decision()
		if v != 7 || r != tc.round || h.procs[tc.p].DecidedVia() != ViaMessage {
			t.Fatalf("p%d decided (%d, %d, %v), want (7, %d, message)",
				tc.p+1, v, r, h.procs[tc.p].DecidedVia(), tc.round)
		}
	}
}

// TestPurgeWindowValidation — windows below n-1 break Lemma 4 and are
// rejected.
func TestPurgeWindowValidation(t *testing.T) {
	p := NewWithOptions(1, Options{PurgeWindow: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for purge window < n-1")
		}
	}()
	p.Init(0, 5)
}

// TestPurgeWindowNMinus1Works — n-1 is the tightest window that
// preserves Lemma 4; the algorithm must still be correct.
func TestPurgeWindowNMinus1Works(t *testing.T) {
	adv := adversary.Figure1()
	h := run(t, adv, seqProposals(6), 20, Options{PurgeWindow: 5})
	checkValidity(t, h, seqProposals(6))
	if vals := h.distinctDecisions(t); len(vals) > 3 {
		t.Fatalf("purge window n-1 broke 3-agreement: %v", vals)
	}
}

// TestWidePurgeWindowDelaysNothingFatal — a wide window keeps stale edges
// longer but correctness must be unaffected.
func TestWidePurgeWindowDelaysNothingFatal(t *testing.T) {
	adv := adversary.Figure1()
	h := run(t, adv, seqProposals(6), 40, Options{PurgeWindow: 12})
	checkValidity(t, h, seqProposals(6))
	if vals := h.distinctDecisions(t); len(vals) > 3 {
		t.Fatalf("wide purge window broke 3-agreement: %v", vals)
	}
}

// TestConcurrentExecutorSameDecisions — Algorithm 1 behaves identically
// under the goroutine-per-process executor.
func TestConcurrentExecutorSameDecisions(t *testing.T) {
	adv := adversary.Figure1()
	props := seqProposals(6)
	seq, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewFactory(props, Options{}),
		MaxRounds:  15,
	})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := rounds.RunConcurrent(rounds.Config{
		Adversary:  adv,
		NewProcess: NewFactory(props, Options{}),
		MaxRounds:  15,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Procs {
		a, b := seq.Procs[i].(*Process), conc.Procs[i].(*Process)
		av, ar := a.Decision()
		bv, br := b.Decision()
		if av != bv || ar != br || a.DecidedVia() != b.DecidedVia() {
			t.Fatalf("p%d diverges across executors: (%d,%d,%v) vs (%d,%d,%v)",
				i+1, av, ar, a.DecidedVia(), bv, br, b.DecidedVia())
		}
		if !a.Approx().Equal(b.Approx()) {
			t.Fatalf("p%d approximation graphs diverge across executors", i+1)
		}
	}
}

// TestStopWhenAllDecided — simulations can stop as soon as everyone
// decided; Figure 1's run finishes in 8 rounds.
func TestStopWhenAllDecided(t *testing.T) {
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adversary.Figure1(),
		NewProcess: NewFactory(seqProposals(6), Options{}),
		MaxRounds:  100,
		StopWhen:   rounds.AllDecided,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 8 || !res.Stopped {
		t.Fatalf("Rounds=%d Stopped=%v, want 8/true", res.Rounds, res.Stopped)
	}
}

// TestChurnRunTerminates — under a non-stabilizing churn adversary the
// approximation stays correct (Lemma 6 holds for any run) and decisions
// still respect the core's MinK.
func TestChurnRunTerminates(t *testing.T) {
	core := adversary.Figure1StableSkeleton()
	ch := adversary.NewChurn(core, 0.15, 4242)
	h := run(t, ch, seqProposals(6), 60, Options{})
	for p := 0; p < 6; p++ {
		if !h.procs[p].Decided() {
			t.Fatalf("p%d undecided under churn", p+1)
		}
	}
	// The skeleton converges to the core, whose MinK is 3.
	if vals := h.distinctDecisions(t); len(vals) > 3 {
		t.Fatalf("churn run produced %d values: %v", len(vals), vals)
	}
	checkValidity(t, h, seqProposals(6))
}

// TestDecisionPanicsBeforeDeciding — Decision() on an undecided process
// is a programming error.
func TestDecisionPanicsBeforeDeciding(t *testing.T) {
	p := New(1)
	p.Init(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Decision()
}

// TestMessageKindString covers the Stringers used in trace output.
func TestMessageKindString(t *testing.T) {
	if Prop.String() != "prop" || Decide.String() != "decide" {
		t.Fatal("Kind strings wrong")
	}
	if ViaNone.String() != "none" || ViaConnectivity.String() != "connectivity" ||
		ViaMessage.String() != "message" {
		t.Fatal("Via strings wrong")
	}
}

// TestAdoptSmallestDecideValue — when several decide messages arrive in
// one round, the smallest value is adopted deterministically.
func TestAdoptSmallestDecideValue(t *testing.T) {
	// Two isolated roots p1, p2 both feed p3.
	g := graph.NewFullDigraph(3)
	g.AddSelfLoops()
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	h := run(t, adversary.Static(g), []int64{30, 20, 10}, 10, Options{})
	// p1 decides 30, p2 decides 20 (both at round 3); p3's own estimate
	// is min(30,20,10)=10 but it must adopt a decide value: 20.
	v, r := h.procs[2].Decision()
	if v != 20 || r != 4 || h.procs[2].DecidedVia() != ViaMessage {
		t.Fatalf("p3 decided (%d, %d, %v), want (20, 4, message)",
			v, r, h.procs[2].DecidedVia())
	}
}
