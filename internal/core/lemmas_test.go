package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
)

// lemmaBattery yields a diverse set of runs for the structural lemma
// tests: the Figure 1 run, lower-bound runs, random rooted skeletons with
// noise prefixes, crash runs, and eventual runs.
func lemmaBattery(seed int64) []rounds.Adversary {
	rng := rand.New(rand.NewSource(seed))
	advs := []rounds.Adversary{
		adversary.Figure1(),
		adversary.LowerBound(6, 3),
		adversary.LowerBound(5, 2),
		adversary.Complete(4),
		adversary.Isolation(4),
		adversary.Partition(6, adversary.EvenPartition(6, 3)),
	}
	for i := 0; i < 10; i++ {
		n := 3 + rng.Intn(6)
		advs = append(advs, adversary.RandomSources(n, 1+rng.Intn(n), rng.Intn(6), 0.3, rng))
	}
	for i := 0; i < 4; i++ {
		n := 3 + rng.Intn(5)
		crashRun, _ := adversary.RandomCrashes(n, rng.Intn(n), 4, rng)
		advs = append(advs, crashRun)
	}
	for i := 0; i < 3; i++ {
		n := 3 + rng.Intn(4)
		advs = append(advs, adversary.Eventual(adversary.Complete(n), 1+rng.Intn(2*n)))
	}
	return advs
}

// forEachRun runs the battery (both option variants) and calls fn.
func forEachRun(t *testing.T, fn func(t *testing.T, h *runHistory, opts Options)) {
	t.Helper()
	for oi, opts := range []Options{{}, {MergeOwnGraph: true}} {
		for i, adv := range lemmaBattery(int64(1000 * (oi + 1))) {
			n := adv.N()
			maxRounds := 6*n + 10
			h := run(t, adv, seqProposals(n), maxRounds, opts)
			fn(t, h, opts)
			if t.Failed() {
				t.Fatalf("battery adversary %d (n=%d, mergeOwn=%v) failed", i, n, opts.MergeOwnGraph)
			}
		}
	}
}

// TestObservation1 — p ∈ G^r_p and no edge label s ≤ r - n survives.
func TestObservation1(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := 1; r <= h.rounds; r++ {
			for p := 0; p < h.n; p++ {
				g := h.approxAt(r, p)
				if !g.HasNode(p) {
					t.Errorf("round %d: p%d not in own approximation", r, p+1)
				}
				g.ForEachEdge(func(u, v, s int) {
					if s <= r-h.n {
						t.Errorf("round %d: edge p%d-%d->p%d too old", r, u+1, s, v+1)
					}
					if s > r {
						t.Errorf("round %d: edge p%d-%d->p%d from the future", r, u+1, s, v+1)
					}
				})
			}
		}
	})
}

// TestLemma3 — PTp equals the model-level PT(p, r) (the in-neighborhood
// of the round-r skeleton), fresh in-edges carry label exactly r, and
// there is at most one label per pair (guaranteed by representation, so
// we check the fresh-label claim).
func TestLemma3(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := 1; r <= h.rounds; r++ {
			skel := h.tracker.At(r)
			for p := 0; p < h.n; p++ {
				wantPT := skel.InNeighbors(p)
				if !h.pts[r-1][p].Equal(wantPT) {
					t.Errorf("round %d: PT(p%d) = %v, model says %v",
						r, p+1, h.pts[r-1][p], wantPT)
				}
				g := h.approxAt(r, p)
				wantPT.ForEach(func(q int) {
					if got := g.Label(q, p); got != r {
						t.Errorf("round %d: label(q=p%d -> p%d) = %d, want fresh %d",
							r, q+1, p+1, got, r)
					}
				})
			}
		}
	})
}

// TestLemma4 — path propagation: if q' ∈ PT(p1, r-ℓ) and a path
// p1 -> ... -> p(ℓ+1) of length ℓ ≤ n-1 exists in G^∩r (r ≥ n), then
// G^r_p(ℓ+1) has an edge q' -> p1 labeled within [r-ℓ, r].
func TestLemma4(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := h.n; r <= h.rounds; r++ {
			skel := h.tracker.At(r)
			for p1 := 0; p1 < h.n; p1++ {
				dist := graph.Distances(skel, p1)
				ptAtRminL := func(l int) graph.NodeSet { return h.pts[r-l-1][p1] }
				for pend := 0; pend < h.n; pend++ {
					l := dist[pend]
					if l < 0 || l > h.n-1 || l == 0 {
						continue
					}
					g := h.approxAt(r, pend)
					ptAtRminL(l).ForEach(func(q int) {
						got := g.Label(q, p1)
						if got < r-l || got > r {
							t.Errorf("round %d: Lemma 4 fails for path p%d~>p%d (ℓ=%d): label(p%d->p%d)=%d ∉ [%d,%d]",
								r, p1+1, pend+1, l, q+1, p1+1, got, r-l, r)
						}
					})
				}
			}
		}
	})
}

// TestLemma5 — for r ≥ n the approximation contains the process's
// strongly connected component in the round-r skeleton: G^r_p ⊇ C^r_p.
func TestLemma5(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := h.n; r <= h.rounds; r++ {
			skel := h.tracker.At(r)
			for p := 0; p < h.n; p++ {
				comp := graph.ComponentOf(skel, p)
				compGraph := skel.InducedSubgraph(comp)
				approx := h.approxAt(r, p).Unlabeled()
				if !compGraph.SubgraphOf(approx) {
					t.Errorf("round %d: C^r_p%d ⊄ G^r_p%d\n comp   %v\n approx %v",
						r, p+1, p+1, compGraph, approx)
				}
			}
		}
	})
}

// TestLemma6 — no invented information: every edge (q' -s-> q) in any
// approximation satisfies q' ∈ PT(q, s), i.e. the edge is in the round-s
// skeleton.
func TestLemma6(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := 1; r <= h.rounds; r++ {
			for p := 0; p < h.n; p++ {
				h.approxAt(r, p).ForEachEdge(func(u, v, s int) {
					if !h.tracker.At(s).HasEdge(u, v) {
						t.Errorf("round %d: edge p%d-%d->p%d in G_p%d not in G^∩%d",
							r, u+1, s, v+1, p+1, s)
					}
				})
			}
		}
	})
}

// TestLemma7 — if G^(r+n-1)_p is strongly connected then it is contained
// in C^r_p.
func TestLemma7(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		for r := 1; r+h.n-1 <= h.rounds; r++ {
			skel := h.tracker.At(r)
			for p := 0; p < h.n; p++ {
				g := h.approxAt(r+h.n-1, p)
				if !g.StronglyConnected() {
					continue
				}
				comp := graph.ComponentOf(skel, p)
				if !g.Nodes().SubsetOf(comp) {
					t.Errorf("round %d: strongly connected G^%d_p%d = %v ⊄ C^%d_p%d = %v",
						r, r+h.n-1, p+1, g.Nodes(), r, p+1, comp)
				}
			}
		}
	})
}

// TestTheorem8 — a strongly connected approximation G^R_p (R ≥ n)
// contains the stable-skeleton component C^∞_q of every node q it
// contains (nodes and edges).
func TestTheorem8(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		// Use the final skeleton as G^∩∞ (battery runs are long enough
		// for stabilization; Churn is not in the battery).
		stable := h.tracker.At(h.rounds)
		for R := h.n; R <= h.rounds; R++ {
			for p := 0; p < h.n; p++ {
				g := h.approxAt(R, p)
				if !g.StronglyConnected() {
					continue
				}
				approx := g.Unlabeled()
				g.Nodes().ForEach(func(q int) {
					comp := graph.ComponentOf(stable, q)
					compGraph := stable.InducedSubgraph(comp)
					if !compGraph.SubgraphOf(approx) {
						t.Errorf("round %d: C^∞_p%d ⊄ strongly connected G^%d_p%d",
							R, q+1, R, p+1)
					}
				})
			}
		}
	})
}

// TestLemma12 — estimates of processes that did not adopt a decide
// message are constant from round n-1 on.
func TestLemma12(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		if h.rounds < h.n {
			return
		}
		for p := 0; p < h.n; p++ {
			if h.procs[p].DecidedVia() == ViaMessage {
				continue
			}
			final := h.est[h.rounds-1][p]
			for r := h.n - 1; r <= h.rounds; r++ {
				if h.est[r-1][p] != final {
					t.Errorf("p%d estimate changed after round n-1: %d -> %d at round %d",
						p+1, h.est[r-1][p], final, r)
				}
			}
		}
	})
}

// TestLemma14 — processes in the same strongly connected component of
// G^∩n have equal estimates at the end of round n.
func TestLemma14(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		if h.rounds < h.n {
			return
		}
		skel := h.tracker.At(h.n)
		seen := graph.NewNodeSet(h.n)
		for p := 0; p < h.n; p++ {
			if seen.Has(p) {
				continue
			}
			comp := graph.ComponentOf(skel, p)
			seen.UnionWith(comp)
			want := h.est[h.n-1][p]
			comp.ForEach(func(q int) {
				if h.est[h.n-1][q] != want {
					t.Errorf("x^n differs inside C^n: p%d has %d, p%d has %d",
						p+1, want, q+1, h.est[h.n-1][q])
				}
			})
		}
	})
}

// TestLemma10And11 — every process decides exactly once, within the
// Lemma 11 bound r_ST + 2n - 1.
func TestLemma10And11(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		rst := h.tracker.LastChange()
		if rst < 1 {
			rst = 1
		}
		bound := rst + 2*h.n - 1
		if h.rounds < bound {
			t.Fatalf("battery run too short: %d rounds < bound %d", h.rounds, bound)
		}
		for p := 0; p < h.n; p++ {
			if !h.procs[p].Decided() {
				t.Errorf("p%d never decided (bound %d, ran %d rounds)", p+1, bound, h.rounds)
				continue
			}
			_, r := h.procs[p].Decision()
			if r > bound {
				t.Errorf("p%d decided at round %d > bound r_ST+2n-1 = %d", p+1, r, bound)
			}
			if r < h.n {
				t.Errorf("p%d decided at round %d < n = %d", p+1, r, h.n)
			}
		}
		checkIrrevocability(t, h)
	})
}

// TestValidityAndMonotonicityBattery — Lemma 9 and Observation 2 across
// the whole battery.
func TestValidityAndMonotonicityBattery(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		checkValidity(t, h, seqProposals(h.n))
		checkEstimateMonotone(t, h)
	})
}

// TestLemma15KAgreement — the number of distinct decisions never exceeds
// MinK of the stable skeleton (the smallest k for which Psrcs(k) holds),
// which is the paper's k-agreement property instantiated with the
// tightest admissible k.
func TestLemma15KAgreement(t *testing.T) {
	forEachRun(t, func(t *testing.T, h *runHistory, _ Options) {
		stable := h.tracker.At(h.rounds)
		k := predicate.MinK(stable)
		if got := len(h.distinctDecisions(t)); got > k {
			t.Errorf("%d distinct decisions > MinK = %d", got, k)
		}
	})
}
