package core

import (
	"testing"

	"kset/internal/adversary"
	"kset/internal/graph"
)

// Allocation-regression tests: the per-round hot path (Send + Transition)
// must be allocation-free in steady state, so sweeps of thousands of
// trials are not dominated by GC churn. If one of these starts failing, a
// change reintroduced per-round garbage — fix the change, don't relax the
// test. See DESIGN.md §4.

// runRound executes one full round of Algorithm 1 on a complete
// communication graph: every process sends, every process receives every
// message (complete graphs include all self-loops, so the recv vector is
// the message vector itself).
func runRound(r int, procs []*Process, msgs []any) {
	for i, p := range procs {
		msgs[i] = p.Send(r)
	}
	for _, p := range procs {
		p.Transition(r, msgs)
	}
}

func TestTransitionAllocsPerRun(t *testing.T) {
	for _, n := range []int{8, 32} {
		props := make([]int64, n)
		for i := range props {
			props[i] = int64(i + 1)
		}
		procs := make([]*Process, n)
		for i := range procs {
			procs[i] = NewWithOptions(props[i], Options{})
			procs[i].Init(i, n)
		}
		msgs := make([]any, n)
		// Warm up past the decision round (r >= n on a complete graph)
		// so the measured rounds exercise the decided steady state, with
		// all scratch buffers at their final size.
		r := 0
		for i := 0; i < 2*n+2; i++ {
			r++
			runRound(r, procs, msgs)
		}
		for _, p := range procs {
			if !p.Decided() {
				t.Fatalf("n=%d: process %d undecided after warmup", n, p.Self())
			}
		}
		avg := testing.AllocsPerRun(50, func() {
			r++
			runRound(r, procs, msgs)
		})
		if avg != 0 {
			t.Errorf("n=%d: %v allocs per steady-state round (all %d Sends + Transitions), want 0", n, avg, n)
		}
	}
}

// TestTransitionAllocsLargeN pins the multi-word steady state: at n=128
// every bitset kernel in the round path runs its multi-word code, and it
// must be exactly as allocation-free as the single-word fast path. A
// complete graph would make the warmup quadratic in messages, so the
// topology is a directed ring with self-loops — strongly connected from
// round one, ~2 in-edges per process.
func TestTransitionAllocsLargeN(t *testing.T) {
	n := 128
	ring := graph.NewFullDigraph(n)
	for v := 0; v < n; v++ {
		ring.AddEdge(v, v)
		ring.AddEdge(v, (v+1)%n)
	}
	procs := make([]*Process, n)
	for i := range procs {
		procs[i] = NewWithOptions(int64(i+1), Options{})
		procs[i].Init(i, n)
	}
	msgs := make([]any, n)
	recv := make([]any, n)
	r := 0
	round := func() {
		r++
		for i, p := range procs {
			msgs[i] = p.Send(r)
		}
		for q := 0; q < n; q++ {
			for j := range recv {
				recv[j] = nil
			}
			ring.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
			procs[q].Transition(r, recv)
		}
	}
	// Warm past the decision round (r >= n once the approximation is
	// strongly connected) so the measured rounds run the decided steady
	// state with all scratch at final size.
	for i := 0; i < 2*n+4; i++ {
		round()
	}
	for _, p := range procs {
		if !p.Decided() {
			t.Fatalf("process %d undecided after warmup", p.Self())
		}
	}
	avg := testing.AllocsPerRun(10, round)
	if avg != 0 {
		t.Errorf("%v allocs per steady-state round at n=%d, want 0", avg, n)
	}
}

// TestTransitionAllocsUndecided pins the pre-decision path too: sparse
// connectivity keeps the approximation from becoming strongly connected,
// so every measured round runs lines 26-28 including the connectivity
// test.
func TestTransitionAllocsUndecided(t *testing.T) {
	n := 8
	// A single directed ring edge pattern that never becomes strongly
	// connected from the receivers' pruned perspective fast enough:
	// use the Theorem 2 lower-bound run, which keeps some processes
	// undecided for many rounds.
	adv := adversary.LowerBound(n, 3)
	procs := make([]*Process, n)
	for i := range procs {
		procs[i] = NewWithOptions(int64(i+1), Options{})
		procs[i].Init(i, n)
	}
	msgs := make([]any, n)
	recv := make([]any, n)
	r := 0
	round := func() {
		r++
		g := adv.Graph(r)
		for i, p := range procs {
			msgs[i] = p.Send(r)
		}
		for q := 0; q < n; q++ {
			for j := range recv {
				recv[j] = nil
			}
			g.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
			procs[q].Transition(r, recv)
		}
	}
	for i := 0; i < 4; i++ {
		round()
	}
	avg := testing.AllocsPerRun(20, round)
	if avg != 0 {
		t.Errorf("%v allocs per round on the lower-bound run, want 0", avg)
	}
}
