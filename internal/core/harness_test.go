package core

import (
	"testing"

	"kset/internal/graph"
	"kset/internal/rounds"
	"kset/internal/skeleton"
)

// runHistory captures everything the lemma tests need from one run:
// per-round approximation graphs, estimates, PT sets and decision state
// for every process, plus the skeleton-with-history tracker.
type runHistory struct {
	n       int
	rounds  int
	procs   []*Process
	tracker *skeleton.Tracker

	// Indexed [round-1][proc].
	approx  [][]*graph.Labeled
	est     [][]int64
	pts     [][]graph.NodeSet
	decided [][]bool
	via     [][]Via
}

// run executes Algorithm 1 under adv for maxRounds rounds (no early stop)
// and records full history.
func run(t *testing.T, adv rounds.Adversary, proposals []int64, maxRounds int, opts Options) *runHistory {
	t.Helper()
	n := adv.N()
	h := &runHistory{n: n, tracker: skeleton.NewTracker(n, true)}
	rec := rounds.ObserverFunc(func(r int, g *graph.Digraph, procs []rounds.Algorithm) {
		ga := make([]*graph.Labeled, n)
		es := make([]int64, n)
		pt := make([]graph.NodeSet, n)
		de := make([]bool, n)
		vi := make([]Via, n)
		for i, ap := range procs {
			p := ap.(*Process)
			ga[i] = p.Approx()
			es[i] = p.Estimate()
			pt[i] = p.PT()
			de[i] = p.Decided()
			vi[i] = p.DecidedVia()
		}
		h.approx = append(h.approx, ga)
		h.est = append(h.est, es)
		h.pts = append(h.pts, pt)
		h.decided = append(h.decided, de)
		h.via = append(h.via, vi)
	})
	res, err := rounds.RunSequential(rounds.Config{
		Adversary:  adv,
		NewProcess: NewFactory(proposals, opts),
		MaxRounds:  maxRounds,
		Observer:   rounds.MultiObserver{h.tracker, rec},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.rounds = res.Rounds
	h.procs = make([]*Process, n)
	for i, p := range res.Procs {
		h.procs[i] = p.(*Process)
	}
	return h
}

// approxAt returns G^r_p (1-based round).
func (h *runHistory) approxAt(r, p int) *graph.Labeled { return h.approx[r-1][p] }

// distinctDecisions returns the set of decided values; it fails the test
// unless every process decided.
func (h *runHistory) distinctDecisions(t *testing.T) map[int64]bool {
	t.Helper()
	vals := map[int64]bool{}
	for i, p := range h.procs {
		if !p.Decided() {
			t.Fatalf("p%d undecided after %d rounds", i+1, h.rounds)
		}
		v, _ := p.Decision()
		vals[v] = true
	}
	return vals
}

// seqProposals returns the canonical proposal vector 1, 2, ..., n
// (pairwise distinct, process id order).
func seqProposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// checkValidity asserts every decision is some process's proposal.
func checkValidity(t *testing.T, h *runHistory, proposals []int64) {
	t.Helper()
	valid := map[int64]bool{}
	for _, v := range proposals {
		valid[v] = true
	}
	for i, p := range h.procs {
		if !p.Decided() {
			continue
		}
		v, _ := p.Decision()
		if !valid[v] {
			t.Fatalf("p%d decided %d, not a proposal", i+1, v)
		}
	}
}

// checkIrrevocability asserts decisions never flip and estimates never
// change after deciding.
func checkIrrevocability(t *testing.T, h *runHistory) {
	t.Helper()
	for p := 0; p < h.n; p++ {
		seen := false
		var val int64
		for r := 1; r <= h.rounds; r++ {
			if !h.decided[r-1][p] {
				if seen {
					t.Fatalf("p%d un-decided at round %d", p+1, r)
				}
				continue
			}
			if !seen {
				seen = true
				val = h.est[r-1][p]
				continue
			}
			if h.est[r-1][p] != val {
				t.Fatalf("p%d changed decision from %d to %d at round %d",
					p+1, val, h.est[r-1][p], r)
			}
		}
	}
}

// checkEstimateMonotone asserts Observation 2: xp never increases under
// the line-27 minimum rule. The one legitimate exception is the round in
// which a process adopts a decide message (line 11): the adopted decision
// value may exceed the process's own stale estimate (it is still some
// root component's decision value, so k-agreement is unaffected).
func checkEstimateMonotone(t *testing.T, h *runHistory) {
	t.Helper()
	for p := 0; p < h.n; p++ {
		for r := 2; r <= h.rounds; r++ {
			adoptedNow := h.via[r-1][p] == ViaMessage &&
				h.decided[r-1][p] && !h.decided[r-2][p]
			if h.est[r-1][p] > h.est[r-2][p] && !adoptedNow {
				t.Fatalf("p%d estimate rose from %d to %d at round %d",
					p+1, h.est[r-2][p], h.est[r-1][p], r)
			}
		}
	}
}
