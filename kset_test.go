package kset_test

import (
	"math/rand"
	"testing"

	"kset"
)

// TestSolveFigure1 exercises the one-call public entry point end to end.
func TestSolveFigure1(t *testing.T) {
	out, err := kset.Solve(kset.Figure1(), kset.SeqProposals(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Check(3); err != nil {
		t.Fatal(err)
	}
	if out.MinK != 3 || out.RootComps != 2 {
		t.Fatalf("MinK=%d RootComps=%d", out.MinK, out.RootComps)
	}
	if got := out.DistinctDecisions(); len(got) != 2 {
		t.Fatalf("decisions %v", got)
	}
}

func TestPublicPredicateHelpers(t *testing.T) {
	skel, rst := kset.StableSkeleton(kset.Figure1(), 0)
	if rst != 3 {
		t.Fatalf("r_ST = %d", rst)
	}
	if !kset.PsrcsHolds(skel, 3) || kset.PsrcsHolds(skel, 2) {
		t.Fatal("Psrcs boundary wrong")
	}
	if kset.MinK(skel) != 3 {
		t.Fatal("MinK wrong")
	}
	if roots := kset.RootComponents(skel); len(roots) != 2 {
		t.Fatalf("roots %v", roots)
	}
}

func TestPublicExecutorsAndFactory(t *testing.T) {
	cfg := kset.Config{
		Adversary:  kset.Complete(4),
		NewProcess: kset.NewFactory(kset.SeqProposals(4), kset.Options{}),
		MaxRounds:  10,
	}
	seq, err := kset.RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := kset.RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Procs {
		a := seq.Procs[i].(*kset.Process)
		b := conc.Procs[i].(*kset.Process)
		av, _ := a.Decision()
		bv, _ := b.Decision()
		if av != bv || av != 1 {
			t.Fatalf("p%d: %d vs %d", i+1, av, bv)
		}
	}
}

func TestPublicAdversaries(t *testing.T) {
	if kset.Isolation(3).Graph(1).NumEdges() != 3 {
		t.Fatal("Isolation wrong")
	}
	if kset.LowerBound(5, 2).N() != 5 {
		t.Fatal("LowerBound wrong")
	}
	out, err := kset.Solve(kset.PartitionEven(6, 2), kset.SeqProposals(6))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.DistinctDecisions()); got != 2 {
		t.Fatalf("partition decisions = %d", got)
	}

	rng := rand.New(rand.NewSource(5))
	run := kset.RandomSources(8, 2, 3, 0.2, rng)
	out, err = kset.Solve(run, kset.SeqProposals(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Check(out.MinK); err != nil {
		t.Fatal(err)
	}

	ev := kset.Eventual(kset.Complete(4), 4)
	out, err = kset.Solve(ev, kset.SeqProposals(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.DistinctDecisions()); got != 4 {
		t.Fatalf("eventual run decisions = %d, want n", got)
	}

	ch := kset.NewChurn(kset.Figure1().Base(), 0.1, 1)
	out, err = kset.Solve(ch, kset.SeqProposals(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.CheckTermination(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicProcessDirectUse(t *testing.T) {
	p := kset.NewProcess(9)
	p.Init(0, 1)
	msg := p.Send(1).(*kset.Message)
	p.Transition(1, []any{msg})
	if !p.Decided() {
		t.Fatal("singleton should decide at round 1")
	}
	q := kset.NewProcessWithOptions(3, kset.Options{MergeOwnGraph: true})
	q.Init(0, 1)
	if q.Decided() {
		t.Fatal("fresh process decided")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Runfile round-trip through the facade.
	buf := kset.EncodeRun(kset.ConsensusViolation())
	run, err := kset.DecodeRun(buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := kset.Solve(run, kset.ConsensusViolationProposals())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.DistinctDecisions()); got != 2 {
		t.Fatalf("replayed witness decided %d values, want the documented 2", got)
	}

	// The repaired guard on the same replayed run reaches consensus.
	outR, err := kset.Execute(kset.Spec{
		Adversary: run,
		Proposals: kset.ConsensusViolationProposals(),
		Opts:      kset.Options{ConservativeDecide: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(outR.DistinctDecisions()); got != 1 {
		t.Fatalf("repaired guard decided %d values, want 1", got)
	}

	// Mobile adversary through the facade.
	m := kset.NewMobile(6, 1, 4, 3)
	out2, err := kset.Solve(m.Settled(), kset.SeqProposals(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := out2.CheckTermination(); err != nil {
		t.Fatal(err)
	}
	if got := len(out2.DistinctDecisions()); got > out2.MinK {
		t.Fatalf("mobile run: %d values > MinK %d", got, out2.MinK)
	}
}
