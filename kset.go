// Package kset is the public API of the stable-skeleton k-set agreement
// library, a faithful reproduction of "Solving k-Set Agreement with
// Stable Skeleton Graphs" (Biely, Robinson, Schmid; IPDPS-W/IPPS 2011,
// arXiv:1102.4423).
//
// The library models distributed computations as infinite sequences of
// communication-closed rounds. Per-round connectivity is a directed
// communication graph chosen by an Adversary; Algorithm 1 (the paper's
// contribution, the Process type here) approximates the run's stable
// skeleton — the intersection of all round graphs — and decides when its
// approximation becomes strongly connected. In every run satisfying the
// communication predicate Psrcs(k) ("each k+1 processes contain two that
// perpetually hear a common 2-source"), at most k distinct values are
// decided; the predicate is tight (it cannot solve (k-1)-set agreement).
//
// Quick start:
//
//	adv := kset.Figure1()                       // a 6-process Psrcs(3) run
//	out, err := kset.Solve(adv, []int64{1, 2, 3, 4, 5, 6})
//	// out.Decisions, out.MinK, out.RootComps, ...
//
// The deeper layers remain available for custom experiments: executors
// and interfaces (internal/rounds re-exported here), the graph substrate,
// predicate checkers, adversaries, the wire codec, and the simulation
// driver. See README.md for the architecture and EXPERIMENTS.md for the
// reproduction results.
package kset

import (
	"math/rand"

	"kset/internal/adversary"
	"kset/internal/core"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/rounds"
	"kset/internal/runfile"
	"kset/internal/sim"
	"kset/internal/skeleton"
)

// Core model types, re-exported for downstream use.
type (
	// Digraph is a directed communication graph over processes 0..n-1.
	Digraph = graph.Digraph
	// NodeSet is a set of process indices.
	NodeSet = graph.NodeSet
	// Labeled is a round-labeled digraph (approximation graphs).
	Labeled = graph.Labeled

	// Algorithm is a per-process sending/transition state machine.
	Algorithm = rounds.Algorithm
	// Adversary supplies per-round communication graphs.
	Adversary = rounds.Adversary
	// Decider is implemented by agreement algorithms.
	Decider = rounds.Decider
	// Config describes one run for the executors.
	Config = rounds.Config
	// Result is an executor's outcome.
	Result = rounds.Result

	// Process is one Algorithm 1 process.
	Process = core.Process
	// Options are Algorithm 1's interpretation knobs.
	Options = core.Options
	// Message is Algorithm 1's round message (tag, x, G).
	Message = core.Message

	// Run is an eventually-constant adversary (prefix + stable graph).
	Run = adversary.Run
	// CrashSchedule assigns crash rounds for the crash adversary.
	CrashSchedule = adversary.CrashSchedule
	// Churn is the non-stabilizing additive-noise adversary.
	Churn = adversary.Churn

	// Spec describes one simulation for Execute.
	Spec = sim.Spec
	// Outcome bundles decisions with skeleton and wire measurements.
	Outcome = sim.Outcome

	// ObserverFunc adapts a function to the per-round Observer interface.
	ObserverFunc = rounds.ObserverFunc
)

// NewDigraph returns an empty communication graph over processes 0..n-1.
func NewDigraph(n int) *Digraph { return graph.NewDigraph(n) }

// NewFullDigraph returns a graph with all n processes present and no
// edges.
func NewFullDigraph(n int) *Digraph { return graph.NewFullDigraph(n) }

// CompleteDigraph returns the complete graph on n processes, self-loops
// included.
func CompleteDigraph(n int) *Digraph { return graph.CompleteDigraph(n) }

// AllDecided is a StopWhen helper: true once every process has decided.
func AllDecided(r int, procs []Algorithm) bool { return rounds.AllDecided(r, procs) }

// NewProcess returns an Algorithm 1 process proposing the given value.
func NewProcess(proposal int64) *Process { return core.New(proposal) }

// NewProcessWithOptions returns an Algorithm 1 process with explicit
// options.
func NewProcessWithOptions(proposal int64, opts Options) *Process {
	return core.NewWithOptions(proposal, opts)
}

// NewFactory adapts a proposal vector to the executor factory callback.
func NewFactory(proposals []int64, opts Options) func(self int) Algorithm {
	return core.NewFactory(proposals, opts)
}

// RunSequential executes a run in deterministic lockstep.
func RunSequential(cfg Config) (*Result, error) { return rounds.RunSequential(cfg) }

// RunConcurrent executes a run with one goroutine per process.
func RunConcurrent(cfg Config) (*Result, error) { return rounds.RunConcurrent(cfg) }

// Execute runs one fully instrumented simulation.
func Execute(spec Spec) (*Outcome, error) { return sim.Execute(spec) }

// Solve is the one-call entry point: run Algorithm 1 under adv with the
// given proposals until everyone decides (or a generous automatic round
// bound is hit) and return the instrumented outcome.
func Solve(adv Adversary, proposals []int64) (*Outcome, error) {
	return sim.Execute(sim.Spec{Adversary: adv, Proposals: proposals})
}

// StableSkeleton computes G^∩∞ and the stabilization round of an
// eventually-constant adversary (or of the first `horizon` rounds).
func StableSkeleton(adv Adversary, horizon int) (*Digraph, int) {
	return skeleton.StableSkeleton(adv, horizon)
}

// PsrcsHolds reports whether the predicate Psrcs(k) holds for a stable
// skeleton.
func PsrcsHolds(skel *Digraph, k int) bool { return predicate.Holds(skel, k) }

// MinK returns the smallest k for which Psrcs(k) holds in the given
// stable skeleton.
func MinK(skel *Digraph) int { return predicate.MinK(skel) }

// RootComponents returns the root components of a graph in deterministic
// order.
func RootComponents(g *Digraph) []NodeSet { return graph.RootComponents(g) }

// Adversary constructors, re-exported.

// Figure1 returns the paper's Figure 1 run (6 processes, Psrcs(3)).
func Figure1() *Run { return adversary.Figure1() }

// Complete returns the fully synchronous run on n processes.
func Complete(n int) *Run { return adversary.Complete(n) }

// Isolation returns the run in which every process hears only itself.
func Isolation(n int) *Run { return adversary.Isolation(n) }

// Static returns the run repeating g forever.
func Static(g *Digraph) *Run { return adversary.Static(g) }

// LowerBound returns the Theorem 2 run for which (k-1)-set agreement is
// impossible under Psrcs(k).
func LowerBound(n, k int) *Run { return adversary.LowerBound(n, k) }

// PartitionEven returns a run split into `blocks` isolated cliques.
func PartitionEven(n, blocks int) *Run {
	return adversary.Partition(n, adversary.EvenPartition(n, blocks))
}

// RandomSources returns a run with a random stable skeleton having the
// given number of root components, after a noisy prefix.
func RandomSources(n, roots, noisy int, p float64, rng *rand.Rand) *Run {
	return adversary.RandomSources(n, roots, noisy, p, rng)
}

// Eventual prefixes a run with `isolated` rounds of total isolation,
// modelling the eventual-only predicate ♦Psrcs.
func Eventual(base *Run, isolated int) *Run { return adversary.Eventual(base, isolated) }

// NewChurn wraps a core graph with per-round additive noise, forever.
func NewChurn(coreGraph *Digraph, p float64, seed int64) *Churn {
	return adversary.NewChurn(coreGraph, p, seed)
}

// NewMobile returns the Santoro-Widmayer mobile-omission adversary: f
// freshly chosen processes are silenced every round. With settleRound > 0
// the silent set freezes from that round on.
func NewMobile(n, f, settleRound int, seed int64) *adversary.Mobile {
	return adversary.NewMobile(n, f, settleRound, seed)
}

// ConsensusViolation returns the deterministic 4-process Psrcs(1) run on
// which the published Algorithm 1 decides two values (the E10
// counterexample); pair it with ConsensusViolationProposals and compare
// Options.ConservativeDecide on and off.
func ConsensusViolation() *Run { return adversary.ConsensusViolation() }

// ConsensusViolationProposals returns the proposal vector of the E10
// counterexample.
func ConsensusViolationProposals() []int64 { return adversary.ConsensusViolationProposals() }

// EncodeRun serializes an eventually-constant run to the runfile format
// for storage and bit-identical replay.
func EncodeRun(run *Run) []byte { return runfile.Encode(run) }

// DecodeRun parses a runfile back into a replayable adversary.
func DecodeRun(buf []byte) (*Run, error) { return runfile.Decode(buf) }

// SeqProposals returns the canonical distinct proposals 1..n.
func SeqProposals(n int) []int64 { return sim.SeqProposals(n) }
