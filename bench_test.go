// Benchmarks: one per reproduction experiment (DESIGN.md §3, E1-E12),
// plus microbenchmarks of the hot paths. Run with
//
//	go test -bench=. -benchmem
//
// Each experiment bench executes the same code path as cmd/ksetbench and
// reports domain metrics (rounds, bytes, decision counts) through
// b.ReportMetric so the shape of the paper's claims is visible straight
// from the bench output.
package kset_test

import (
	"math/rand"
	"sync"
	"testing"

	"kset"
	"kset/internal/adversary"
	"kset/internal/baseline"
	"kset/internal/core"
	"kset/internal/experiments"
	"kset/internal/graph"
	"kset/internal/predicate"
	"kset/internal/sim"
	"kset/internal/skeleton"
	"kset/internal/transport"
	"kset/internal/wire"
)

// BenchmarkE1Figure1 runs the full Figure 1 reproduction (approximation
// trace plus decision check).
func BenchmarkE1Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatal("figure mismatch")
		}
	}
}

// BenchmarkE2RootComponents sweeps random skeletons and validates
// Theorem 1 (#roots <= MinK); the dominant cost is the exact
// independence-number computation.
func BenchmarkE2RootComponents(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			viol := 0
			for i := 0; i < b.N; i++ {
				skel := graph.RandomRootedSkeleton(n, 1+rng.Intn(n), rng)
				if _, _, ok := predicate.RootComponentBound(skel); !ok {
					viol++
				}
			}
			if viol != 0 {
				b.Fatalf("%d Theorem 1 violations", viol)
			}
		})
	}
}

// BenchmarkE3LowerBound runs the Theorem 2 construction to completion and
// reports the decision count (must be exactly k).
func BenchmarkE3LowerBound(b *testing.B) {
	for _, nk := range [][2]int{{8, 3}, {16, 7}, {32, 15}} {
		n, k := nk[0], nk[1]
		b.Run(benchName("n", n), func(b *testing.B) {
			adv := adversary.LowerBound(n, k)
			for i := 0; i < b.N; i++ {
				out, err := sim.Execute(sim.Spec{Adversary: adv, Proposals: sim.SeqProposals(n)})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(out.DistinctDecisions()); got != k {
					b.Fatalf("distinct = %d, want %d", got, k)
				}
				b.ReportMetric(float64(out.Rounds), "rounds/run")
			}
		})
	}
}

// BenchmarkE4DecisionRounds measures the termination latency of random
// Psrcs runs against the Lemma 11 bound.
func BenchmarkE4DecisionRounds(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			var last float64
			for i := 0; i < b.N; i++ {
				run := adversary.RandomSources(n, 1+rng.Intn(3), n/2, 0.25, rng)
				out, err := sim.Execute(sim.Spec{Adversary: run, Proposals: sim.SeqProposals(n)})
				if err != nil {
					b.Fatal(err)
				}
				if out.MaxDecisionRound() > out.RST+2*n-1 {
					b.Fatal("Lemma 11 bound violated")
				}
				last = float64(out.MaxDecisionRound())
			}
			b.ReportMetric(last, "lastDecision/run")
		})
	}
}

// BenchmarkE5MessageComplexity measures encoded message sizes; max bytes
// must stay polynomial in n (the Section V claim).
func BenchmarkE5MessageComplexity(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			var maxBytes, avg float64
			for i := 0; i < b.N; i++ {
				run := adversary.RandomSources(n, 2, n/2, 0.3, rng)
				out, err := sim.Execute(sim.Spec{
					Adversary:     run,
					Proposals:     sim.SeqProposals(n),
					MeterMessages: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				maxBytes = float64(out.Meter.MaxBytes)
				avg = out.Meter.Avg()
			}
			b.ReportMetric(maxBytes, "maxB/msg")
			b.ReportMetric(avg, "avgB/msg")
		})
	}
}

// BenchmarkE6Baselines compares a full Algorithm 1 run against FloodMin
// on the same crash adversary.
func BenchmarkE6Baselines(b *testing.B) {
	n, f, k := 8, 3, 2
	b.Run("algorithm1", func(b *testing.B) {
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < b.N; i++ {
			run, _ := adversary.RandomCrashes(n, f, 3, rng)
			out, err := sim.Execute(sim.Spec{Adversary: run, Proposals: sim.SeqProposals(n)})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.Rounds), "rounds/run")
		}
	})
	b.Run("floodmin", func(b *testing.B) {
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < b.N; i++ {
			run, _ := adversary.RandomCrashes(n, f, 3, rng)
			out, err := sim.Execute(sim.Spec{
				Adversary:  run,
				NewProcess: floodMinFactory(n, f, k),
				MaxRounds:  f/k + 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.Rounds), "rounds/run")
		}
	})
}

// BenchmarkE7Consensus measures consensus latency on Psrcs(1) runs under
// the repaired guard.
func BenchmarkE7Consensus(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < b.N; i++ {
				run := adversary.RandomSingleSource(n, rng.Intn(n), 0.2, 0.2, rng)
				out, err := sim.Execute(sim.Spec{
					Adversary: run,
					Proposals: sim.SeqProposals(n),
					Opts:      core.Options{ConservativeDecide: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(out.DistinctDecisions()) != 1 {
					b.Fatal("consensus missed under repaired guard")
				}
				b.ReportMetric(float64(out.Rounds), "rounds/run")
			}
		})
	}
}

// BenchmarkE8Eventual runs the ♦Psrcs isolation-prefix demonstration.
func BenchmarkE8Eventual(b *testing.B) {
	n := 8
	for i := 0; i < b.N; i++ {
		out, err := sim.Execute(sim.Spec{
			Adversary: adversary.Eventual(adversary.Complete(n), n),
			Proposals: sim.SeqProposals(n),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.DistinctDecisions()) != n {
			b.Fatal("expected n distinct decisions")
		}
	}
}

// BenchmarkE9Ablations measures the paper-faithful configuration against
// the own-graph-merge variant on identical runs.
func BenchmarkE9Ablations(b *testing.B) {
	n := 16
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"paper", core.Options{}},
		{"mergeOwn", core.Options{MergeOwnGraph: true}},
		{"purge2n", core.Options{PurgeWindow: 2 * n}},
		{"conservative", core.Options{ConservativeDecide: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < b.N; i++ {
				run := adversary.RandomSources(n, 2, n/2, 0.25, rng)
				out, err := sim.Execute(sim.Spec{
					Adversary: run,
					Proposals: sim.SeqProposals(n),
					Opts:      v.opts,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.MaxDecisionRound()), "lastDecision/run")
			}
		})
	}
}

// BenchmarkE10GuardFlaw runs the deterministic counterexample under both
// guards.
func BenchmarkE10GuardFlaw(b *testing.B) {
	adv := adversary.ConsensusViolation()
	props := adversary.ConsensusViolationProposals()
	for _, v := range []struct {
		name string
		opts core.Options
		want int
	}{
		{"published", core.Options{}, 2},
		{"repaired", core.Options{ConservativeDecide: true}, 1},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := sim.Execute(sim.Spec{Adversary: adv, Proposals: props, Opts: v.opts})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(out.DistinctDecisions()); got != v.want {
					b.Fatalf("distinct = %d, want %d", got, v.want)
				}
			}
		})
	}
}

// --- microbenchmarks of the hot paths ---

// BenchmarkRoundTransition measures one full round of Algorithm 1
// transitions (the simulator's inner loop) at several scales.
func BenchmarkRoundTransition(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		b.Run(benchName("n", n), func(b *testing.B) {
			adv := adversary.Complete(n)
			procs := make([]*core.Process, n)
			factory := core.NewFactory(sim.SeqProposals(n), core.Options{})
			for i := range procs {
				procs[i] = factory(i).(*core.Process)
				procs[i].Init(i, n)
			}
			msgs := make([]any, n)
			recv := make([]any, n)
			g := adv.Graph(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := i + 1
				for j, p := range procs {
					msgs[j] = p.Send(r)
				}
				for q := 0; q < n; q++ {
					for j := range recv {
						recv[j] = nil
					}
					g.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
					procs[q].Transition(r, recv)
				}
			}
		})
	}
}

// BenchmarkHotTransition measures one full round of Algorithm 1 on a
// complete graph — the zero-allocation steady state of the round engine
// (CI runs every BenchmarkHot* as a smoke test).
func BenchmarkHotTransition(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(benchName("n", n), func(b *testing.B) {
			procs := make([]*core.Process, n)
			factory := core.NewFactory(sim.SeqProposals(n), core.Options{})
			for i := range procs {
				procs[i] = factory(i).(*core.Process)
				procs[i].Init(i, n)
			}
			msgs := make([]any, n)
			r := 0
			round := func() {
				r++
				for j, p := range procs {
					msgs[j] = p.Send(r)
				}
				for _, p := range procs {
					p.Transition(r, msgs)
				}
			}
			for i := 0; i < 2*n+2; i++ {
				round() // reach the decided steady state
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
		})
	}
}

// BenchmarkHotTransitionRing is the large-n variant of the round engine
// benchmark: a directed ring with self-loops keeps the per-round message
// volume linear in n, so the multi-word kernels (merge, purge, prune,
// connectivity) dominate instead of quadratic message fan-in. One op is
// one full round across all n processes.
func BenchmarkHotTransitionRing(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(benchName("n", n), func(b *testing.B) {
			ring := graph.NewFullDigraph(n)
			for v := 0; v < n; v++ {
				ring.AddEdge(v, v)
				ring.AddEdge(v, (v+1)%n)
			}
			procs := make([]*core.Process, n)
			factory := core.NewFactory(sim.SeqProposals(n), core.Options{})
			for i := range procs {
				procs[i] = factory(i).(*core.Process)
				procs[i].Init(i, n)
			}
			msgs := make([]any, n)
			recv := make([]any, n)
			r := 0
			round := func() {
				r++
				for j, p := range procs {
					msgs[j] = p.Send(r)
				}
				for q := 0; q < n; q++ {
					for j := range recv {
						recv[j] = nil
					}
					ring.ForEachIn(q, func(p int) { recv[p] = msgs[p] })
					procs[q].Transition(r, recv)
				}
			}
			for i := 0; i < 2*n+4; i++ {
				round() // reach the decided steady state
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
		})
	}
}

// BenchmarkHotPruneInPlace measures the matrix-native line-25 prune with
// a warm scratch.
func BenchmarkHotPruneInPlace(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128, 256} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(31))
			g := graph.NewLabeled(n)
			for i := 0; i < 3*n; i++ {
				g.MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
			}
			work := g.Clone()
			var s graph.ReachScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(g)
				work.PruneUnreachableToInPlace(0, &s)
			}
		})
	}
}

// BenchmarkHotStronglyConnected measures the matrix-native line-28
// connectivity test with a warm scratch.
func BenchmarkHotStronglyConnected(b *testing.B) {
	for _, n := range []int{8, 32, 64, 128, 256} {
		b.Run(benchName("n", n), func(b *testing.B) {
			g := graph.NewLabeled(n)
			for v := 0; v < n; v++ {
				g.MergeEdge(v, (v+1)%n, 1)
			}
			var s graph.ReachScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !g.StronglyConnectedInto(&s) {
					b.Fatal("cycle not strongly connected")
				}
			}
		})
	}
}

// BenchmarkHotSkeletonObserve measures the skeleton tracker's word-level
// intersection in the post-stabilization regime.
func BenchmarkHotSkeletonObserve(b *testing.B) {
	n := 64
	g := kset.CompleteDigraph(n)
	tr := skeleton.NewTracker(n, false)
	tr.Observe(1, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(i+2, g)
	}
}

// BenchmarkHotSkeletonObserveWide is the multi-word variant of the
// skeleton tracker benchmark: the stable-intersection word loop over a
// 256-node complete graph (4 words per row).
func BenchmarkHotSkeletonObserveWide(b *testing.B) {
	n := 256
	g := kset.CompleteDigraph(n)
	tr := skeleton.NewTracker(n, false)
	tr.Observe(1, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(i+2, g)
	}
}

// BenchmarkSCC measures the strongly-connected-components kernel.
func BenchmarkSCC(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			g := graph.RandomDigraph(n, 0.1, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(graph.SCC(g)) == 0 {
					b.Fatal("no components")
				}
			}
		})
	}
}

// BenchmarkWireCodec measures message encode/decode round-trips.
func BenchmarkWireCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	n := 32
	g := graph.NewLabeled(n)
	for i := 0; i < 4*n; i++ {
		g.MergeEdge(rng.Intn(n), rng.Intn(n), 1+rng.Intn(100))
	}
	msg := core.Message{Kind: core.Prop, X: 12345, G: g}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendEncode(buf[:0], msg)
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(buf)), "B/msg")
}

// BenchmarkMinK measures the exact Psrcs MinK computation (independence
// number).
func BenchmarkMinK(b *testing.B) {
	for _, n := range []int{16, 32, 48} {
		b.Run(benchName("n", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(13))
			skel := graph.RandomRootedSkeleton(n, 3, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if predicate.MinK(skel) < 1 {
					b.Fatal("bad MinK")
				}
			}
		})
	}
}

// BenchmarkSolveFacade measures the one-call public entry point on the
// Figure 1 run.
func BenchmarkSolveFacade(b *testing.B) {
	adv := kset.Figure1()
	props := kset.SeqProposals(6)
	for i := 0; i < b.N; i++ {
		out, err := kset.Solve(adv, props)
		if err != nil {
			b.Fatal(err)
		}
		if out.Rounds != 8 {
			b.Fatal("unexpected round count")
		}
	}
}

// BenchmarkTransportRound measures one communication-closed round on
// the real transports — every process broadcasts a payload and gathers
// the full vector — with no algorithm or codec cost. One op is one
// round across all n endpoints (goroutines pace each other through
// round closure, so ns/op is the transport's round latency). The
// benchdiff gate watches these alongside the BenchmarkHot family.
func BenchmarkTransportRound(b *testing.B) {
	kinds := []struct {
		name string
		ns   []int
		make func(n int) (transport.Transport, error)
	}{
		{"inproc", []int{8, 32}, func(n int) (transport.Transport, error) { return transport.NewInProc(n, nil), nil }},
		// The fully distributed mesh runs only at n=8 here: at n=32 its
		// ~1000 in-flight buffers per round make pool-eviction alloc
		// counts GC-timing-dependent, which the benchdiff gate cannot
		// tolerate (E19 covers that shape's throughput instead).
		{"tcp", []int{8}, func(n int) (transport.Transport, error) { return transport.NewTCPLoopback(n, nil) }},
		{"tcpnodes2", []int{8, 32}, func(n int) (transport.Transport, error) { return transport.NewTCPMeshLoopback(n, 2, nil) }},
		// The UDP rows mirror the TCP ones (same n=8 restriction on the
		// fully distributed shape, for the same pool-eviction reason).
		// Default options: on a quiet loopback nothing is lost, so the
		// round deadline never fires and ns/op measures the datagram
		// batch path, not absence closure.
		{"udp", []int{8}, func(n int) (transport.Transport, error) {
			return transport.NewUDPMeshLoopback(n, n, nil, transport.UDPOpts{})
		}},
		{"udpnodes2", []int{8, 32}, func(n int) (transport.Transport, error) {
			return transport.NewUDPMeshLoopback(n, 2, nil, transport.UDPOpts{})
		}},
	}
	for _, kind := range kinds {
		for _, n := range kind.ns {
			b.Run(kind.name+"/"+benchName("n", n), func(b *testing.B) {
				tr, err := kind.make(n)
				if err != nil {
					b.Fatal(err)
				}
				defer tr.Close()
				eps := make([]transport.Endpoint, n)
				for i := range eps {
					if eps[i], err = tr.Endpoint(i); err != nil {
						b.Fatal(err)
					}
				}
				payload := make([]byte, 96)
				errs := make([]error, n)
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				wg.Add(n)
				for i := range eps {
					go func(self int) {
						defer wg.Done()
						ep := eps[self]
						var buf [][]byte
						for r := 1; r <= b.N; r++ {
							if err := ep.Broadcast(r, payload); err != nil {
								errs[self] = err
								return
							}
							if buf, err = ep.Gather(r, buf); err != nil {
								errs[self] = err
								return
							}
						}
					}(i)
				}
				wg.Wait()
				b.StopTimer()
				for i, err := range errs {
					if err != nil {
						b.Fatalf("endpoint %d: %v", i, err)
					}
				}
			})
		}
	}
}

// BenchmarkConcurrentExecutor compares the goroutine-per-process executor
// with the sequential one on identical workloads.
func BenchmarkConcurrentExecutor(b *testing.B) {
	n := 32
	rng := rand.New(rand.NewSource(14))
	run := adversary.RandomSources(n, 2, 4, 0.2, rng)
	for _, mode := range []struct {
		name       string
		concurrent bool
	}{{"sequential", false}, {"concurrent", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := sim.Execute(sim.Spec{
					Adversary:  run,
					Proposals:  sim.SeqProposals(n),
					Concurrent: mode.concurrent,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := out.CheckTermination(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func floodMinFactory(n, f, k int) func(int) kset.Algorithm {
	props := sim.SeqProposals(n)
	return func(self int) kset.Algorithm {
		return baseline.NewFloodMin(props[self], f, k)
	}
}

// BenchmarkE11Convergence measures the convergence-lag experiment (how
// long local views keep changing after the skeleton stabilizes).
func BenchmarkE11Convergence(b *testing.B) {
	cfg := experiments.QuickConfig()
	cfg.Trials = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11Convergence(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatal("convergence lag exceeded bound")
		}
	}
}
